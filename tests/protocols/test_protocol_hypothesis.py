"""Hypothesis-driven end-to-end verification of every protocol.

For arbitrary small workloads and specifications, each protocol must
drive every transaction to commit and produce a history the offline
theory certifies (CSR for the classical protocols, RSR for the
spec-aware ones).  This complements the seeded randomized tests with
hypothesis's shrinking: a failure here minimizes to a readable
counterexample.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import read, write
from repro.core.rsg import is_relatively_serializable
from repro.core.serializability import is_conflict_serializable
from repro.core.transactions import Transaction
from repro.protocols import (
    AltruisticLockingScheduler,
    RelativeLockingScheduler,
    RSGTScheduler,
    SGTScheduler,
    TwoPhaseLockingScheduler,
)
from repro.sim.runner import simulate

OBJECTS = ("x", "y")

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def workloads(draw):
    """(transactions, spec) pairs, small enough to simulate quickly."""
    n = draw(st.integers(2, 3))
    transactions = []
    for tx_id in range(1, n + 1):
        length = draw(st.integers(1, 3))
        ops = []
        for _ in range(length):
            obj = draw(st.sampled_from(OBJECTS))
            ops.append(write(obj) if draw(st.booleans()) else read(obj))
        transactions.append(Transaction(tx_id, ops))
    views = {}
    for tx in transactions:
        for observer in transactions:
            if tx.tx_id == observer.tx_id:
                continue
            cuts = draw(
                st.sets(
                    st.integers(1, max(1, len(tx) - 1)), max_size=len(tx)
                )
            )
            views[(tx.tx_id, observer.tx_id)] = {
                cut for cut in cuts if cut <= len(tx) - 1
            }
    return transactions, RelativeAtomicitySpec(transactions, views)


@given(workloads())
@_SETTINGS
def test_2pl_commits_everything_serializably(workload):
    transactions, _spec = workload
    result = simulate(transactions, TwoPhaseLockingScheduler())
    assert result.committed == len(transactions)
    assert is_conflict_serializable(result.schedule)


@given(workloads())
@_SETTINGS
def test_sgt_commits_everything_serializably(workload):
    transactions, _spec = workload
    result = simulate(transactions, SGTScheduler())
    assert result.committed == len(transactions)
    assert is_conflict_serializable(result.schedule)


@given(workloads())
@_SETTINGS
def test_altruistic_commits_everything_serializably(workload):
    transactions, _spec = workload
    result = simulate(transactions, AltruisticLockingScheduler())
    assert result.committed == len(transactions)
    assert is_conflict_serializable(result.schedule)


@given(workloads())
@_SETTINGS
def test_rsgt_commits_everything_relatively_serializably(workload):
    transactions, spec = workload
    result = simulate(transactions, RSGTScheduler(spec))
    assert result.committed == len(transactions)
    assert is_relatively_serializable(result.schedule, spec)


@given(workloads())
@_SETTINGS
def test_relative_locking_commits_everything_relatively_serializably(
    workload,
):
    transactions, spec = workload
    result = simulate(transactions, RelativeLockingScheduler(spec))
    assert result.committed == len(transactions)
    assert is_relatively_serializable(result.schedule, spec)


@given(workloads())
@_SETTINGS
def test_every_history_contains_each_operation_once(workload):
    transactions, spec = workload
    result = simulate(transactions, RelativeLockingScheduler(spec))
    expected = {op for tx in transactions for op in tx}
    assert set(result.schedule.operations) == expected
    assert len(result.schedule) == len(expected)
