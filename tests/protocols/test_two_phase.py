"""Unit tests for strict two-phase locking."""

from repro.core.transactions import Transaction
from repro.protocols.base import Decision
from repro.protocols.two_phase import TwoPhaseLockingScheduler


def _admit(scheduler, *txs):
    for tx in txs:
        scheduler.admit(tx)


class TestGranting:
    def test_nonconflicting_requests_granted(self):
        t1 = Transaction.from_notation(1, "r[x]")
        t2 = Transaction.from_notation(2, "r[y]")
        scheduler = TwoPhaseLockingScheduler()
        _admit(scheduler, t1, t2)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        assert scheduler.request(t2[0]).decision is Decision.GRANT

    def test_shared_readers_coexist(self):
        t1 = Transaction.from_notation(1, "r[x]")
        t2 = Transaction.from_notation(2, "r[x]")
        scheduler = TwoPhaseLockingScheduler()
        _admit(scheduler, t1, t2)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        assert scheduler.request(t2[0]).decision is Decision.GRANT

    def test_writer_blocks_reader_until_commit(self):
        t1 = Transaction.from_notation(1, "w[x]")
        t2 = Transaction.from_notation(2, "r[x]")
        scheduler = TwoPhaseLockingScheduler()
        _admit(scheduler, t1, t2)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        assert scheduler.request(t2[0]).decision is Decision.WAIT
        scheduler.finish(1)
        assert scheduler.request(t2[0]).decision is Decision.GRANT

    def test_lock_upgrade_by_sole_holder(self):
        t1 = Transaction.from_notation(1, "r[x] w[x]")
        scheduler = TwoPhaseLockingScheduler()
        _admit(scheduler, t1)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        assert scheduler.request(t1[1]).decision is Decision.GRANT

    def test_upgrade_blocked_by_other_reader(self):
        t1 = Transaction.from_notation(1, "r[x] w[x]")
        t2 = Transaction.from_notation(2, "r[x]")
        scheduler = TwoPhaseLockingScheduler()
        _admit(scheduler, t1, t2)
        scheduler.request(t1[0])
        scheduler.request(t2[0])
        assert scheduler.request(t1[1]).decision is Decision.WAIT


class TestDeadlock:
    def test_two_transaction_deadlock_aborts_requester(self):
        t1 = Transaction.from_notation(1, "w[x] w[y]")
        t2 = Transaction.from_notation(2, "w[y] w[x]")
        scheduler = TwoPhaseLockingScheduler()
        _admit(scheduler, t1, t2)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        assert scheduler.request(t2[0]).decision is Decision.GRANT
        assert scheduler.request(t1[1]).decision is Decision.WAIT
        outcome = scheduler.request(t2[1])
        assert outcome.decision is Decision.ABORT
        assert outcome.victims == (2,)

    def test_victim_restart_succeeds_after_blocker_commits(self):
        t1 = Transaction.from_notation(1, "w[x] w[y]")
        t2 = Transaction.from_notation(2, "w[y] w[x]")
        scheduler = TwoPhaseLockingScheduler()
        _admit(scheduler, t1, t2)
        scheduler.request(t1[0])
        scheduler.request(t2[0])
        scheduler.request(t1[1])
        scheduler.request(t2[1])  # aborts T2
        scheduler.remove(2)
        assert scheduler.request(t1[1]).decision is Decision.GRANT
        scheduler.finish(1)
        assert scheduler.request(t2[0]).decision is Decision.GRANT
        assert scheduler.request(t2[1]).decision is Decision.GRANT

    def test_three_way_deadlock_detected(self):
        t1 = Transaction.from_notation(1, "w[x] w[y]")
        t2 = Transaction.from_notation(2, "w[y] w[z]")
        t3 = Transaction.from_notation(3, "w[z] w[x]")
        scheduler = TwoPhaseLockingScheduler()
        _admit(scheduler, t1, t2, t3)
        scheduler.request(t1[0])
        scheduler.request(t2[0])
        scheduler.request(t3[0])
        assert scheduler.request(t1[1]).decision is Decision.WAIT
        assert scheduler.request(t2[1]).decision is Decision.WAIT
        assert scheduler.request(t3[1]).decision is Decision.ABORT


class TestRelease:
    def test_remove_releases_locks(self):
        t1 = Transaction.from_notation(1, "w[x]")
        t2 = Transaction.from_notation(2, "w[x]")
        scheduler = TwoPhaseLockingScheduler()
        _admit(scheduler, t1, t2)
        scheduler.request(t1[0])
        scheduler.remove(1)
        assert scheduler.request(t2[0]).decision is Decision.GRANT
