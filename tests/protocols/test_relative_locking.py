"""Unit + randomized tests for certified relative locking."""

import random

import pytest

from repro.core.rsg import is_relatively_serializable
from repro.core.schedules import Schedule
from repro.core.serializability import is_conflict_serializable
from repro.core.transactions import Transaction
from repro.errors import ProtocolError
from repro.paper import figure1
from repro.protocols.base import Decision
from repro.protocols.relative_locking import RelativeLockingScheduler
from repro.sim.runner import simulate
from repro.specs.builders import absolute_spec, random_spec
from repro.workloads.random_schedules import random_transactions


def _drive_committing(scheduler, ops):
    """Request ops in order, committing transactions as they complete."""
    decisions = []
    for op in ops:
        outcome = scheduler.request(op)
        decisions.append(outcome.decision)
        if outcome.decision is Decision.GRANT and scheduler.progress(
            op.tx
        ) == len(scheduler.transaction(op.tx)):
            scheduler.finish(op.tx)
    return decisions


class TestAdmission:
    def test_spec_coverage_enforced(self):
        t1 = Transaction.from_notation(1, "r[x]")
        t2 = Transaction.from_notation(2, "w[x]")
        scheduler = RelativeLockingScheduler(absolute_spec([t1]))
        with pytest.raises(ProtocolError):
            scheduler.admit(t2)


class TestDonationAdmitsThePaperExample:
    def test_sra_granted_operation_by_operation(self):
        # Sra is NOT conflict serializable: no classical locking protocol
        # can produce it.  Unit-boundary donation grants every operation.
        fig = figure1()
        scheduler = RelativeLockingScheduler(fig.spec)
        for tx in fig.transactions:
            scheduler.admit(tx)
        decisions = _drive_committing(scheduler, list(fig.schedule("Sra")))
        assert decisions == [Decision.GRANT] * 10
        history = Schedule(list(fig.transactions), scheduler.history)
        assert history == fig.schedule("Sra")
        assert not is_conflict_serializable(history)
        assert is_relatively_serializable(history, fig.spec)


class TestDegenerationToStrict2PL:
    def test_absolute_spec_blocks_like_2pl(self):
        t1 = Transaction.from_notation(1, "w[x] w[y]")
        t2 = Transaction.from_notation(2, "r[x]")
        spec = absolute_spec([t1, t2])
        scheduler = RelativeLockingScheduler(spec)
        scheduler.admit(t1)
        scheduler.admit(t2)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        # x's last use has passed, but the only boundary is commit:
        # under absolute views nothing is donated early.
        assert scheduler.request(t2[0]).decision is Decision.WAIT
        assert scheduler.request(t1[1]).decision is Decision.GRANT
        scheduler.finish(1)
        assert scheduler.request(t2[0]).decision is Decision.GRANT

    def test_boundary_enables_the_same_access(self):
        t1 = Transaction.from_notation(1, "w[x] w[y]")
        t2 = Transaction.from_notation(2, "r[x]")
        from repro.core.atomicity import RelativeAtomicitySpec

        spec = RelativeAtomicitySpec(
            [t1, t2], {(1, 2): "w[x] | w[y]"}
        )
        scheduler = RelativeLockingScheduler(spec)
        scheduler.admit(t1)
        scheduler.admit(t2)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        # Boundary after w1[x] relative to T2 and x's last use passed:
        # donated, so T2 reads through the held lock.
        assert scheduler.request(t2[0]).decision is Decision.GRANT


class TestDeadlockHandling:
    def test_deadlock_aborts_requester(self):
        t1 = Transaction.from_notation(1, "w[x] w[y] w[x]")
        t2 = Transaction.from_notation(2, "w[y] w[x] w[y]")
        spec = absolute_spec([t1, t2])
        scheduler = RelativeLockingScheduler(spec)
        scheduler.admit(t1)
        scheduler.admit(t2)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        assert scheduler.request(t2[0]).decision is Decision.GRANT
        assert scheduler.request(t1[1]).decision is Decision.WAIT
        outcome = scheduler.request(t2[1])
        assert outcome.decision is Decision.ABORT
        assert outcome.victims == (2,)


class TestRandomizedSoundness:
    @pytest.mark.parametrize("seed", range(10))
    def test_histories_always_relatively_serializable(self, seed):
        rng = random.Random(seed)
        txs = random_transactions(
            4, (2, 5), 3, write_probability=0.6, seed=rng.randint(0, 10**6)
        )
        spec = random_spec(txs, 0.6, seed=rng.randint(0, 10**6))
        result = simulate(txs, RelativeLockingScheduler(spec))
        assert is_relatively_serializable(result.schedule, spec)

    @pytest.mark.parametrize("seed", range(6))
    def test_absolute_spec_yields_conflict_serializable(self, seed):
        txs = random_transactions(
            4, (2, 4), 3, write_probability=0.6, seed=seed
        )
        result = simulate(txs, RelativeLockingScheduler(absolute_spec(txs)))
        assert is_conflict_serializable(result.schedule)

    def test_admits_non_csr_histories_somewhere(self):
        # Over a modest seed sweep, the protocol commits at least one
        # history outside CSR — the capability that separates it from
        # 2PL/SGT/altruistic.
        rng = random.Random(99)
        saw_non_csr = False
        for _ in range(40):
            txs = random_transactions(
                4, (2, 5), 3, write_probability=0.6,
                seed=rng.randint(0, 10**6),
            )
            spec = random_spec(txs, 0.6, seed=rng.randint(0, 10**6))
            result = simulate(txs, RelativeLockingScheduler(spec))
            assert is_relatively_serializable(result.schedule, spec)
            if not is_conflict_serializable(result.schedule):
                saw_non_csr = True
                break
        assert saw_non_csr


class TestWaitingDiscipline:
    def test_waits_more_and_aborts_less_than_rsgt(self):
        # The locking layer turns plain conflicts into waits; RSGT can
        # only abort.  Compare on a conflict-heavy workload.
        from repro.protocols.rsgt import RSGTScheduler

        total_lock = {"waits": 0, "restarts": 0}
        total_rsgt = {"waits": 0, "restarts": 0}
        for seed in range(8):
            txs = random_transactions(
                4, (2, 4), 2, write_probability=0.8, seed=seed
            )
            spec = random_spec(txs, 0.4, seed=seed)
            lock_result = simulate(txs, RelativeLockingScheduler(spec))
            rsgt_result = simulate(txs, RSGTScheduler(spec))
            total_lock["waits"] += lock_result.total_waits
            total_lock["restarts"] += lock_result.total_restarts
            total_rsgt["waits"] += rsgt_result.total_waits
            total_rsgt["restarts"] += rsgt_result.total_restarts
        assert total_lock["waits"] > total_rsgt["waits"]
        assert total_lock["restarts"] <= total_rsgt["restarts"]
