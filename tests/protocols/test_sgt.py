"""Unit tests for serialization graph testing."""

from repro.core.transactions import Transaction
from repro.protocols.base import Decision
from repro.protocols.sgt import SGTScheduler


def _admit(scheduler, *txs):
    for tx in txs:
        scheduler.admit(tx)


class TestGranting:
    def test_conflicting_but_acyclic_order_granted(self):
        t1 = Transaction.from_notation(1, "w[x]")
        t2 = Transaction.from_notation(2, "r[x]")
        scheduler = SGTScheduler()
        _admit(scheduler, t1, t2)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        assert scheduler.request(t2[0]).decision is Decision.GRANT

    def test_cycle_aborts_requester(self):
        # r1[x] r2[x] w1[x] grants fine; w2[x] would close T1 <-> T2.
        t1 = Transaction.from_notation(1, "r[x] w[x]")
        t2 = Transaction.from_notation(2, "r[x] w[x]")
        scheduler = SGTScheduler()
        _admit(scheduler, t1, t2)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        assert scheduler.request(t2[0]).decision is Decision.GRANT
        assert scheduler.request(t1[1]).decision is Decision.GRANT
        outcome = scheduler.request(t2[1])
        assert outcome.decision is Decision.ABORT
        assert outcome.victims == (2,)

    def test_sgt_never_waits(self):
        # Every decision is GRANT or ABORT.
        t1 = Transaction.from_notation(1, "w[x] w[y]")
        t2 = Transaction.from_notation(2, "w[y] w[x]")
        scheduler = SGTScheduler()
        _admit(scheduler, t1, t2)
        decisions = {
            scheduler.request(t1[0]).decision,
            scheduler.request(t2[0]).decision,
            scheduler.request(t1[1]).decision,
        }
        assert Decision.WAIT not in decisions

    def test_committed_transaction_still_blocks_cycles(self):
        # T2 committed between T1's two conflicting operations: the edge
        # through the committed node must still be seen.
        t1 = Transaction.from_notation(1, "w[x] w[y]")
        t2 = Transaction.from_notation(2, "w[y] w[x]")
        scheduler = SGTScheduler()
        _admit(scheduler, t1, t2)
        scheduler.request(t1[0])  # w1[x]: T1 holds position on x
        scheduler.request(t2[0])  # w2[y]
        scheduler.request(t2[1])  # w2[x]: edge T1 -> T2
        scheduler.finish(2)
        outcome = scheduler.request(t1[1])  # w1[y]: edge T2 -> T1 = cycle
        assert outcome.decision is Decision.ABORT


class TestRestart:
    def test_victim_restarts_clean(self):
        t1 = Transaction.from_notation(1, "r[x] w[x]")
        t2 = Transaction.from_notation(2, "r[x] w[x]")
        scheduler = SGTScheduler()
        _admit(scheduler, t1, t2)
        scheduler.request(t1[0])
        scheduler.request(t2[0])
        scheduler.request(t1[1])
        scheduler.request(t2[1])  # abort T2
        scheduler.remove(2)
        scheduler.finish(1)
        assert scheduler.request(t2[0]).decision is Decision.GRANT
        assert scheduler.request(t2[1]).decision is Decision.GRANT

    def test_final_history_is_conflict_serializable(self):
        from repro.core.schedules import Schedule
        from repro.core.serializability import is_conflict_serializable

        t1 = Transaction.from_notation(1, "r[x] w[x]")
        t2 = Transaction.from_notation(2, "r[x] w[x]")
        scheduler = SGTScheduler()
        _admit(scheduler, t1, t2)
        scheduler.request(t1[0])
        scheduler.request(t2[0])
        scheduler.request(t1[1])
        scheduler.request(t2[1])
        scheduler.remove(2)
        scheduler.finish(1)
        scheduler.request(t2[0])
        scheduler.request(t2[1])
        scheduler.finish(2)
        schedule = Schedule([t1, t2], scheduler.history)
        assert is_conflict_serializable(schedule)
