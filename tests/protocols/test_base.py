"""Unit tests for the scheduler base-class contract."""

import pytest

from repro.core.operations import Operation
from repro.core.transactions import Transaction
from repro.errors import ProtocolError
from repro.protocols.base import Decision, Outcome, Scheduler


class _AlwaysGrant(Scheduler):
    """Trivial scheduler: grants everything (for contract tests)."""

    name = "always-grant"

    def _decide(self, op: Operation) -> Outcome:
        return Outcome.grant()


@pytest.fixture()
def tx():
    return Transaction.from_notation(1, "r[x] w[x]")


class TestOutcome:
    def test_factories(self):
        assert Outcome.grant().decision is Decision.GRANT
        assert Outcome.wait().decision is Decision.WAIT
        abort = Outcome.abort(3, 4)
        assert abort.decision is Decision.ABORT
        assert abort.victims == (3, 4)


class TestAdmission:
    def test_double_admit_rejected(self, tx):
        scheduler = _AlwaysGrant()
        scheduler.admit(tx)
        with pytest.raises(ProtocolError):
            scheduler.admit(tx)

    def test_request_without_admit_rejected(self, tx):
        with pytest.raises(ProtocolError):
            _AlwaysGrant().request(tx[0])


class TestRequestOrdering:
    def test_program_order_enforced(self, tx):
        scheduler = _AlwaysGrant()
        scheduler.admit(tx)
        with pytest.raises(ProtocolError):
            scheduler.request(tx[1])  # must start with tx[0]

    def test_grant_advances_progress_and_history(self, tx):
        scheduler = _AlwaysGrant()
        scheduler.admit(tx)
        scheduler.request(tx[0])
        assert scheduler.progress(1) == 1
        assert scheduler.history == (tx[0],)

    def test_request_after_commit_rejected(self, tx):
        scheduler = _AlwaysGrant()
        scheduler.admit(tx)
        scheduler.request(tx[0])
        scheduler.request(tx[1])
        scheduler.finish(1)
        with pytest.raises(ProtocolError):
            scheduler.request(tx[0])


class TestCommitAndRemove:
    def test_finish_requires_all_operations(self, tx):
        scheduler = _AlwaysGrant()
        scheduler.admit(tx)
        scheduler.request(tx[0])
        with pytest.raises(ProtocolError):
            scheduler.finish(1)

    def test_finish_marks_committed(self, tx):
        scheduler = _AlwaysGrant()
        scheduler.admit(tx)
        scheduler.request(tx[0])
        scheduler.request(tx[1])
        scheduler.finish(1)
        assert scheduler.is_committed(1)

    def test_remove_clears_history_and_progress(self, tx):
        scheduler = _AlwaysGrant()
        scheduler.admit(tx)
        scheduler.request(tx[0])
        scheduler.remove(1)
        assert scheduler.progress(1) == 0
        assert scheduler.history == ()

    def test_remove_keeps_other_transactions(self, tx):
        other = Transaction.from_notation(2, "w[y]")
        scheduler = _AlwaysGrant()
        scheduler.admit(tx)
        scheduler.admit(other)
        scheduler.request(tx[0])
        scheduler.request(other[0])
        scheduler.remove(1)
        assert scheduler.history == (other[0],)

    def test_remove_committed_rejected(self, tx):
        scheduler = _AlwaysGrant()
        scheduler.admit(tx)
        scheduler.request(tx[0])
        scheduler.request(tx[1])
        scheduler.finish(1)
        with pytest.raises(ProtocolError):
            scheduler.remove(1)

    def test_restart_replays_from_the_start(self, tx):
        scheduler = _AlwaysGrant()
        scheduler.admit(tx)
        scheduler.request(tx[0])
        scheduler.remove(1)
        scheduler.request(tx[0])
        scheduler.request(tx[1])
        scheduler.finish(1)
        assert scheduler.history == (tx[0], tx[1])


class _AlwaysWait(Scheduler):
    """Trivial scheduler: WAITs everything (for watchdog tests)."""

    name = "always-wait"

    def _decide(self, op: Operation) -> Outcome:
        return Outcome.wait()


class TestWatchdog:
    def test_fires_after_threshold_consecutive_waits(self):
        scheduler = _AlwaysWait()
        scheduler.watchdog_threshold = 5
        t1 = Transaction.from_notation(1, "w[x]")
        t2 = Transaction.from_notation(2, "w[y] w[z]")
        scheduler.admit(t1)
        scheduler.admit(t2)
        # Give T2 some progress so the watchdog has a victim (_AlwaysWait
        # never grants, so fake it via the state table).
        scheduler._state_of(2).executed = 1
        outcomes = [scheduler.request(t1.operations[0]) for _ in range(5)]
        assert all(o.decision is Decision.WAIT for o in outcomes[:4])
        assert outcomes[4].decision is Decision.ABORT
        assert outcomes[4].victims == (2,)
        assert scheduler.watchdog_fires == 1

    def test_grant_resets_the_counter(self):
        scheduler = _AlwaysGrant()
        scheduler.watchdog_threshold = 3
        tx = Transaction.from_notation(1, "r[x] w[x]")
        scheduler.admit(tx)
        for op in tx.operations:
            assert scheduler.request(op).decision is Decision.GRANT
        assert scheduler.watchdog_fires == 0

    def test_no_victim_without_progress_keeps_waiting(self):
        scheduler = _AlwaysWait()
        scheduler.watchdog_threshold = 3
        tx = Transaction.from_notation(1, "w[x]")
        scheduler.admit(tx)
        # No live transaction has progress, so there is nothing worth
        # aborting: the watchdog stays silent.
        for _ in range(10):
            assert scheduler.request(tx.operations[0]).decision \
                is Decision.WAIT
        assert scheduler.watchdog_fires == 0

    def test_disabled_with_none_threshold(self):
        scheduler = _AlwaysWait()
        scheduler.watchdog_threshold = None
        t1 = Transaction.from_notation(1, "w[x]")
        scheduler.admit(t1)
        scheduler._state_of(1).executed = 0
        for _ in range(500):
            assert scheduler.request(t1.operations[0]).decision \
                is Decision.WAIT
        assert scheduler.watchdog_fires == 0

    def test_victim_is_cheapest_live_transaction(self):
        scheduler = _AlwaysWait()
        scheduler.watchdog_threshold = 2
        t1 = Transaction.from_notation(1, "w[x] w[y] w[x]")
        t2 = Transaction.from_notation(2, "w[z] w[z]")
        scheduler.admit(t1)
        scheduler.admit(t2)
        scheduler._state_of(1).executed = 2
        scheduler._state_of(2).executed = 1
        scheduler.request(t1.operations[2])
        outcome = scheduler.request(t1.operations[2])
        # T2 has the least progress to throw away.
        assert outcome.decision is Decision.ABORT
        assert outcome.victims == (2,)
