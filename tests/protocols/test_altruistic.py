"""Unit tests for simplified altruistic locking."""

from repro.core.transactions import Transaction
from repro.protocols.altruistic import AltruisticLockingScheduler
from repro.protocols.base import Decision


def _admit(scheduler, *txs):
    for tx in txs:
        scheduler.admit(tx)


class TestDonation:
    def test_short_tx_runs_in_the_wake_of_a_long_one(self):
        # The [SGMA87] motivation: the long transaction finished with x,
        # so the short one need not wait for its commit.
        long_tx = Transaction.from_notation(1, "w[x] w[y] w[z]")
        short_tx = Transaction.from_notation(2, "w[x]")
        scheduler = AltruisticLockingScheduler()
        _admit(scheduler, long_tx, short_tx)
        assert scheduler.request(long_tx[0]).decision is Decision.GRANT
        assert scheduler.request(long_tx[1]).decision is Decision.GRANT
        # x was the long transaction's last use: donated.
        assert scheduler.request(short_tx[0]).decision is Decision.GRANT

    def test_plain_2pl_semantics_without_donation(self):
        # Before the last use, the object is not donated: the short
        # transaction waits like under 2PL.
        long_tx = Transaction.from_notation(1, "w[x] w[y] w[x]")
        short_tx = Transaction.from_notation(2, "w[x]")
        scheduler = AltruisticLockingScheduler()
        _admit(scheduler, long_tx, short_tx)
        scheduler.request(long_tx[0])
        # x will be used again at index 2: not donated yet.
        assert scheduler.request(short_tx[0]).decision is Decision.WAIT

    def test_wake_containment_blocks_racing_ahead(self):
        # The borrower must not touch an object the donor declared but
        # has not donated yet.
        long_tx = Transaction.from_notation(1, "w[x] w[y] w[z]")
        borrower = Transaction.from_notation(2, "w[x] w[z]")
        scheduler = AltruisticLockingScheduler()
        _admit(scheduler, long_tx, borrower)
        scheduler.request(long_tx[0])  # w1[x]: donated (last use of x)
        assert scheduler.request(borrower[0]).decision is Decision.GRANT
        # z is declared by the donor and not donated: borrower waits.
        assert scheduler.request(borrower[1]).decision is Decision.WAIT
        scheduler.request(long_tx[1])
        scheduler.request(long_tx[2])  # w1[z]: donated now
        assert scheduler.request(borrower[1]).decision is Decision.GRANT

    def test_borrow_refused_when_past_is_outside_the_wake(self):
        # The borrower already wrote y, which the donor will access
        # later: using the donated x would order the borrower both
        # before and after the donor, so it must wait instead.
        long_tx = Transaction.from_notation(1, "w[x] w[y]")
        borrower = Transaction.from_notation(2, "w[y] w[x]")
        scheduler = AltruisticLockingScheduler()
        _admit(scheduler, long_tx, borrower)
        scheduler.request(borrower[0])  # w2[y] before the donor gets there
        scheduler.request(long_tx[0])  # w1[x]: donated (last use)
        assert scheduler.request(borrower[1]).decision is Decision.WAIT


class TestDeadlock:
    def test_deadlock_still_detected(self):
        t1 = Transaction.from_notation(1, "w[x] w[y] w[x]")
        t2 = Transaction.from_notation(2, "w[y] w[x] w[y]")
        scheduler = AltruisticLockingScheduler()
        _admit(scheduler, t1, t2)
        # Neither donates (both objects reused), classic deadlock.
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        assert scheduler.request(t2[0]).decision is Decision.GRANT
        assert scheduler.request(t1[1]).decision is Decision.WAIT
        assert scheduler.request(t2[1]).decision is Decision.ABORT


class TestCorrectness:
    def test_wake_runs_produce_serializable_histories(self):
        from repro.core.schedules import Schedule
        from repro.core.serializability import is_conflict_serializable

        long_tx = Transaction.from_notation(1, "w[x] w[y] w[z]")
        short_tx = Transaction.from_notation(2, "w[x]")
        scheduler = AltruisticLockingScheduler()
        _admit(scheduler, long_tx, short_tx)
        scheduler.request(long_tx[0])
        scheduler.request(short_tx[0])
        scheduler.finish(2)
        scheduler.request(long_tx[1])
        scheduler.request(long_tx[2])
        scheduler.finish(1)
        schedule = Schedule([long_tx, short_tx], scheduler.history)
        assert is_conflict_serializable(schedule)

    def test_commit_clears_debts_and_locks(self):
        long_tx = Transaction.from_notation(1, "w[x]")
        other = Transaction.from_notation(2, "w[x]")
        scheduler = AltruisticLockingScheduler()
        _admit(scheduler, long_tx, other)
        scheduler.request(long_tx[0])
        scheduler.finish(1)
        assert scheduler.request(other[0]).decision is Decision.GRANT


class TestWakeTaint:
    def test_wake_written_data_propagates_the_wake(self):
        # Found by hypothesis: T1 donates y after its read, T2 writes y
        # in T1's wake and commits, then T3 — which already raced ahead
        # of T1 on x — asks to read the wake-written y.  Granting would
        # close the serialization cycle T1 -> T2 -> T3 -> T1, so T3 must
        # wait even though the lock table alone (shared on shared) would
        # happily grant.
        t1 = Transaction.from_notation(1, "r[y] w[x]")
        t2 = Transaction.from_notation(2, "w[y] r[y]")
        t3 = Transaction.from_notation(3, "r[x] r[y]")
        scheduler = AltruisticLockingScheduler()
        _admit(scheduler, t1, t2, t3)
        assert scheduler.request(t1[0]).decision is Decision.GRANT  # donates y
        assert scheduler.request(t2[0]).decision is Decision.GRANT  # in wake
        assert scheduler.request(t3[0]).decision is Decision.GRANT  # r3[x]
        assert scheduler.request(t2[1]).decision is Decision.GRANT
        scheduler.finish(2)
        # y now carries T1's wake; T3 touched x, which T1 declared and
        # has not donated, so T3 is outside the wake and must wait.
        assert scheduler.request(t3[1]).decision is Decision.WAIT

    def test_in_wake_reader_joins_through_tainted_data(self):
        # Same shape, but the third transaction never raced ahead of the
        # donor: it is allowed through and inherits the debt.
        t1 = Transaction.from_notation(1, "r[y] w[x]")
        t2 = Transaction.from_notation(2, "w[y] r[y]")
        t3 = Transaction.from_notation(3, "r[y] r[x]")
        scheduler = AltruisticLockingScheduler()
        _admit(scheduler, t1, t2, t3)
        scheduler.request(t1[0])
        scheduler.request(t2[0])
        scheduler.request(t2[1])
        scheduler.finish(2)
        # T3's prefix is empty, so it is (vacuously) in T1's wake.
        assert scheduler.request(t3[0]).decision is Decision.GRANT
        # ... and now indebted: x is declared by T1 and undonated.
        assert scheduler.request(t3[1]).decision is Decision.WAIT


class TestWakeAcyclicity:
    """Rings of pairwise-legal donations, found by fault campaigns.

    T1 donates a to T2, T2 donates b to T3, T3 donates d — if T1 then
    borrowed d, the serialization order would need T1 both before (its
    debtors' chain) and after (the borrow) T3.  The closing borrow must
    be refused, and the refusal must survive the middlemen's commits.
    """

    def _ring(self):
        t1 = Transaction.from_notation(1, "w[a] w[d]")
        t2 = Transaction.from_notation(2, "w[b] w[a]")
        t3 = Transaction.from_notation(3, "w[b] w[d]")
        scheduler = AltruisticLockingScheduler()
        _admit(scheduler, t1, t2, t3)
        assert scheduler.request(t2[0]).decision is Decision.GRANT  # donate b
        assert scheduler.request(t3[0]).decision is Decision.GRANT  # borrow b
        assert scheduler.request(t1[0]).decision is Decision.GRANT  # donate a
        assert scheduler.request(t2[1]).decision is Decision.GRANT  # borrow a
        assert scheduler.request(t3[1]).decision is Decision.GRANT  # donate d
        return scheduler, t1, t2, t3

    def test_closing_borrow_is_refused(self):
        scheduler, t1, _t2, _t3 = self._ring()
        # T3 is transitively indebted to T1 (via T2), so its donated d
        # is unusable to T1: the ring must not close.
        assert scheduler.request(t1[1]).decision is Decision.WAIT

    def test_refusal_survives_the_middlemen_commits(self):
        # Regression: taints anchored to a donor used to be dropped at
        # its commit, so once T3 and T2 committed the creditor T1 was
        # granted d — committing the cycle T1 -> T2 -> T3 -> T1.
        scheduler, t1, _t2, _t3 = self._ring()
        scheduler.finish(3)
        assert scheduler.request(t1[1]).decision is Decision.WAIT
        scheduler.finish(2)
        outcome = scheduler.request(t1[1])
        # Every blocker is committed: waiting can never clear, so the
        # creditor is restarted to serialize after the ring instead.
        assert outcome.decision is Decision.ABORT
        assert outcome.victims == (1,)

    def test_restarted_creditor_serializes_after_the_ring(self):
        from repro.core.schedules import Schedule
        from repro.core.serializability import is_conflict_serializable

        scheduler, t1, t2, t3 = self._ring()
        scheduler.finish(3)
        scheduler.finish(2)
        assert scheduler.request(t1[1]).decision is Decision.ABORT
        scheduler.remove(1)
        assert scheduler.request(t1[0]).decision is Decision.GRANT
        assert scheduler.request(t1[1]).decision is Decision.GRANT
        scheduler.finish(1)
        schedule = Schedule([t1, t2, t3], scheduler.history)
        assert is_conflict_serializable(schedule)
