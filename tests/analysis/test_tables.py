"""Unit tests for ASCII table rendering."""

import pytest

from repro.analysis.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["name", "count"],
            [["alpha", 3], ["b", 20]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "alpha" in lines[2]

    def test_title_line(self):
        text = format_table(["a"], [[1]], title="my table")
        assert text.splitlines()[0] == "my table"

    def test_numeric_columns_right_aligned(self):
        text = format_table(["n"], [[1], [100]])
        lines = text.splitlines()
        assert lines[-2].endswith("  1") or lines[-2].endswith("1")
        # Right-aligned: the short number is padded on the left.
        assert lines[-2].rstrip().rjust(len("100")) == lines[-2].rstrip().rjust(3)
        assert lines[-1].rstrip() == "100"

    def test_float_formatting(self):
        text = format_table(["f"], [[0.123456]])
        assert "0.1235" in text

    def test_bool_and_none_rendering(self):
        text = format_table(["a", "b", "c"], [[True, False, None]])
        assert "yes" in text
        assert "no" in text
        assert "-" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_column_width_follows_longest_cell(self):
        text = format_table(["h"], [["very-long-cell"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len("very-long-cell")
