"""Unit tests for the Figure 5 containment checker."""

from repro.analysis.containment import check_containments
from repro.core.transactions import Transaction
from repro.specs.builders import uniform_spec
from repro.workloads.enumerate import all_interleavings


class TestCheckContainments:
    def test_no_violations_on_exhaustive_small_instance(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "w[x] r[y]"),
        ]
        spec = uniform_spec(txs, 1)
        report = check_containments(all_interleavings(txs), spec)
        assert report.ok
        assert report.checked == 6
        assert report.undecided == 0

    def test_no_violations_on_figure1(self, fig1):
        import itertools
        from repro.workloads.enumerate import all_interleavings

        population = itertools.islice(
            all_interleavings(fig1.transactions), 400
        )
        report = check_containments(
            population, fig1.spec, consistency_budget=50_000
        )
        assert report.ok

    def test_proper_witnesses_found(self, fig1):
        population = list(fig1.schedules.values())
        report = check_containments(population, fig1.spec)
        assert report.ok
        # Sra: relatively atomic but not serial -> witness for
        # serial ⊂ relatively serial (larger without smaller).
        assert ("serial", "relatively serial") in report.proper_witnesses

    def test_figure4_shows_rs_not_subset_of_rc(self, fig4):
        # "relatively serial" -> "relatively consistent" is NOT among the
        # expected containments; Figure 4's schedule would violate it.
        report = check_containments([fig4.schedule("S")], fig4.spec)
        assert report.ok  # none of the *expected* containments break

    def test_budget_exhaustion_counts_undecided(self, fig1):
        report = check_containments(
            [fig1.schedule("S2")], fig1.spec, consistency_budget=1
        )
        assert report.undecided == 1
        assert report.ok
