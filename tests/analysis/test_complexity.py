"""Unit tests for the complexity sweep (E8)."""

from repro.analysis.complexity import adversarial_instance, complexity_sweep


class TestAdversarialInstance:
    def test_instance_shape(self):
        transactions, schedule = adversarial_instance(3, seed=0)
        assert len(transactions) == 3
        assert all(len(tx) == 4 for tx in transactions)
        assert len(schedule) == 12

    def test_shared_object_serializes_everyone(self):
        transactions, _ = adversarial_instance(3, seed=0)
        for tx in transactions:
            assert "shared" in tx.objects

    def test_deterministic(self):
        _, a = adversarial_instance(3, seed=1)
        _, b = adversarial_instance(3, seed=1)
        assert a == b


class TestComplexitySweep:
    def test_rows_cover_sizes(self):
        rows = complexity_sweep(sizes=(2, 3), trials=2, rc_budget=100_000)
        assert [row.n_transactions for row in rows] == [2, 3]
        assert all(row.trials == 2 for row in rows)

    def test_rsg_always_finishes(self):
        rows = complexity_sweep(sizes=(2, 3, 4), trials=2, rc_budget=50_000)
        for row in rows:
            assert row.rsg_seconds >= 0.0

    def test_budget_exhaustion_reported_not_raised(self):
        # A tiny budget forces exhaustion on the larger instances.
        rows = complexity_sweep(sizes=(4,), trials=2, rc_budget=10)
        (row,) = rows
        assert row.rc_budget_exhausted == 2
        assert row.rc_seconds is None

    def test_operations_column(self):
        rows = complexity_sweep(sizes=(2,), trials=1, rc_budget=100_000)
        assert rows[0].n_operations == 8
