"""Unit tests for the recovery trade-off sweep (E13)."""

from repro.analysis.recovery_tradeoff import recovery_tradeoff_sweep


class TestRecoveryTradeoffSweep:
    def test_rows_cover_requested_granularities(self):
        rows = recovery_tradeoff_sweep(
            unit_sizes=(4, 1), samples=60, seed=0
        )
        assert [row.unit_size for row in rows] == [4, 1]
        assert all(row.samples == 60 for row in rows)

    def test_finest_accepts_everything(self):
        rows = recovery_tradeoff_sweep(unit_sizes=(1,), samples=50, seed=1)
        (row,) = rows
        assert row.accepted == 50
        assert row.acceptance_rate == 1.0

    def test_rates_are_fractions(self):
        rows = recovery_tradeoff_sweep(
            unit_sizes=(4, 2, 1), samples=80, seed=2
        )
        for row in rows:
            for rate in (row.recoverable, row.aca, row.strict):
                assert 0.0 <= rate <= 1.0

    def test_class_chain_within_each_row(self):
        # ST ⊆ ACA ⊆ RC means the rates must be ordered in every row.
        rows = recovery_tradeoff_sweep(
            unit_sizes=(3, 2, 1), samples=100, seed=3
        )
        for row in rows:
            assert row.strict <= row.aca + 1e-9
            assert row.aca <= row.recoverable + 1e-9

    def test_absolute_acceptance_never_exceeds_finest(self):
        rows = recovery_tradeoff_sweep(
            unit_sizes=(4, 1), samples=80, seed=4
        )
        assert rows[0].accepted <= rows[-1].accepted

    def test_deterministic_for_seed(self):
        a = recovery_tradeoff_sweep(unit_sizes=(2,), samples=40, seed=5)
        b = recovery_tradeoff_sweep(unit_sizes=(2,), samples=40, seed=5)
        assert a == b
