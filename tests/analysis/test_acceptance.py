"""Unit tests for the acceptance-rate sweep (E9)."""

from repro.analysis.acceptance import acceptance_for_spec, acceptance_sweep
from repro.specs.builders import absolute_spec, finest_spec
from repro.workloads.random_schedules import random_transactions


class TestAcceptanceForSpec:
    def test_finest_spec_accepts_everything(self):
        txs = random_transactions(3, 3, 2, seed=0)
        result = acceptance_for_spec(txs, finest_spec(txs), samples=50)
        assert result.relatively_serializable == result.total

    def test_absolute_spec_matches_csr_rate(self):
        txs = random_transactions(3, 3, 2, seed=0)
        result = acceptance_for_spec(txs, absolute_spec(txs), samples=50)
        assert (
            result.relatively_serializable == result.conflict_serializable
        )


class TestAcceptanceSweep:
    def test_rows_cover_requested_unit_sizes(self):
        rows = acceptance_sweep(
            n_transactions=3,
            ops_per_transaction=3,
            n_objects=2,
            unit_sizes=(3, 1),
            samples=40,
            seed=1,
        )
        assert [row.unit_size for row in rows] == [3, 1]
        assert all(row.samples == 40 for row in rows)

    def test_rates_are_fractions(self):
        rows = acceptance_sweep(unit_sizes=(4, 2), samples=30, seed=2)
        for row in rows:
            for rate in (
                row.conflict_serializable,
                row.relatively_atomic,
                row.relatively_serial,
                row.relatively_serializable,
            ):
                assert 0.0 <= rate <= 1.0

    def test_rsr_rate_never_below_csr_rate(self):
        rows = acceptance_sweep(
            unit_sizes=(4, 3, 2, 1), samples=60, seed=3
        )
        for row in rows:
            assert row.relatively_serializable >= row.conflict_serializable

    def test_finer_units_monotonically_accept_more(self):
        rows = acceptance_sweep(
            unit_sizes=(4, 2, 1), samples=80, seed=4
        )
        rates = [row.relatively_serializable for row in rows]
        assert rates == sorted(rates)

    def test_unit_size_one_accepts_everything(self):
        rows = acceptance_sweep(unit_sizes=(1,), samples=30, seed=5)
        assert rows[0].relatively_serializable == 1.0
        assert rows[0].relatively_atomic == 1.0

    def test_as_cells_shape(self):
        rows = acceptance_sweep(unit_sizes=(2,), samples=10, seed=6)
        assert len(rows[0].as_cells()) == 7
