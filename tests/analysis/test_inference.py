"""Unit + property tests for specification inference."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.inference import infer_spec, required_breakpoints
from repro.core.checkers import is_relatively_serial
from repro.core.rsg import RelativeSerializationGraph, is_relatively_serializable
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.errors import InvalidScheduleError
from repro.paper import figure1


class TestRequiredBreakpoints:
    def test_serial_schedule_needs_nothing(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "w[x] r[y]"),
        ]
        assert required_breakpoints(Schedule.serial(txs)) == {}

    def test_dependency_free_interleaving_needs_nothing(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "r[y] w[y]"),
        ]
        s = Schedule.from_notation(txs, "r1[x] r2[y] w1[x] w2[y]")
        assert required_breakpoints(s) == {}

    def test_sandwiched_dependency_forces_cut(self):
        # w1[x] r2[x] w1[y]: T2's read lands inside T1 and depends on
        # w1[x] — T1 must expose a breakpoint after w1[x] towards T2.
        txs = [
            Transaction.from_notation(1, "w[x] w[y]"),
            Transaction.from_notation(2, "r[x]"),
        ]
        s = Schedule.from_notation(txs, "w1[x] r2[x] w1[y]")
        cuts = required_breakpoints(s)
        assert cuts == {(1, 2): {1}}


class TestInferSpec:
    def test_inferred_spec_accepts_the_inputs_as_relatively_serial(self):
        fig = figure1()
        desired = [fig.schedule("Sra"), fig.schedule("Srs")]
        spec = infer_spec(list(fig.transactions), desired)
        for schedule in desired:
            assert is_relatively_serial(schedule, spec), str(schedule)
            assert is_relatively_serializable(schedule, spec)

    def test_inferred_spec_is_no_finer_than_figure1s(self):
        # The paper's own spec accepts Sra; the inferred one must not
        # need more cuts than the dependencies of Sra force.
        fig = figure1()
        spec = infer_spec(list(fig.transactions), [fig.schedule("Sra")])
        total_cuts = sum(
            len(spec.atomicity(*pair).breakpoints) for pair in spec.pairs()
        )
        finest_cuts = sum(
            len(fig.transactions[i - 1]) - 1 for i in (1, 2, 3)
        ) * 2
        assert 0 < total_cuts < finest_cuts

    def test_all_rsg_arcs_forward_under_inferred_spec(self):
        fig = figure1()
        schedule = fig.schedule("Sra")
        spec = infer_spec(list(fig.transactions), [schedule])
        rsg = RelativeSerializationGraph(schedule, spec)
        for source, target in rsg.graph.edges():
            assert schedule.precedes(source, target)

    def test_rejects_foreign_schedule(self):
        fig = figure1()
        other = [Transaction.from_notation(1, "r[x]")]
        with pytest.raises(InvalidScheduleError):
            infer_spec(other, [fig.schedule("Sra")])

    def test_no_schedules_gives_absolute(self):
        fig = figure1()
        spec = infer_spec(list(fig.transactions), [])
        assert spec.is_absolute


OBJECTS = ("x", "y")


@st.composite
def workload_with_schedules(draw):
    n = draw(st.integers(2, 3))
    transactions = []
    for tx_id in range(1, n + 1):
        length = draw(st.integers(1, 3))
        ops = []
        for _ in range(length):
            obj = draw(st.sampled_from(OBJECTS))
            ops.append(f"w[{obj}]" if draw(st.booleans()) else f"r[{obj}]")
        transactions.append(Transaction(tx_id, ops))
    from repro.workloads.random_schedules import random_interleaving

    seeds = draw(st.lists(st.integers(0, 10_000), min_size=1, max_size=3))
    schedules = [
        random_interleaving(transactions, seed=seed) for seed in seeds
    ]
    return transactions, schedules


@given(workload_with_schedules())
@settings(max_examples=80, deadline=None)
def test_inference_always_legalizes_its_inputs(case):
    transactions, schedules = case
    spec = infer_spec(transactions, schedules)
    for schedule in schedules:
        assert is_relatively_serial(schedule, spec), str(schedule)


@given(workload_with_schedules())
@settings(max_examples=60, deadline=None)
def test_every_refined_pair_is_necessary(case):
    # Pair-level minimality: reverting any refined pair back to absolute
    # atomicity breaks relative seriality of some input schedule.
    # (Single-cut minimality does NOT hold in general — two cuts of one
    # pair can cover each other's forcing interval, the interval-
    # stabbing slack the module docstring describes.)
    from repro.core.atomicity import RelativeAtomicitySpec

    transactions, schedules = case
    spec = infer_spec(transactions, schedules)
    cuts = {
        pair: set(spec.atomicity(*pair).breakpoints)
        for pair in spec.pairs()
    }
    for pair, positions in cuts.items():
        if not positions:
            continue
        weakened_views = {
            p: (set() if p == pair else cs) for p, cs in cuts.items()
        }
        weakened = RelativeAtomicitySpec(transactions, weakened_views)
        assert not all(
            is_relatively_serial(schedule, weakened)
            for schedule in schedules
        ), f"pair {pair} was refined unnecessarily"
