"""Unit tests for the class census."""

from repro.analysis.classes import census, census_exhaustive
from repro.core.transactions import Transaction
from repro.specs.builders import absolute_spec, uniform_spec
from repro.workloads.enumerate import all_interleavings, count_interleavings


def _small_txs():
    return [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "w[x] r[y]"),
    ]


class TestCensus:
    def test_total_matches_population(self):
        txs = _small_txs()
        result = census_exhaustive(txs, absolute_spec(txs))
        assert result.total == count_interleavings(txs)

    def test_absolute_spec_ra_equals_serial(self):
        txs = _small_txs()
        result = census_exhaustive(txs, absolute_spec(txs))
        assert result.relatively_atomic == result.serial == 2

    def test_absolute_spec_rsr_equals_csr(self):
        txs = _small_txs()
        result = census_exhaustive(txs, absolute_spec(txs))
        assert result.relatively_serializable == result.conflict_serializable

    def test_relaxed_spec_strictly_larger(self):
        txs = _small_txs()
        strict = census_exhaustive(txs, absolute_spec(txs))
        relaxed = census_exhaustive(txs, uniform_spec(txs, 1))
        assert (
            relaxed.relatively_serializable
            > strict.relatively_serializable
        )

    def test_containments_in_counts(self):
        txs = _small_txs()
        result = census_exhaustive(txs, uniform_spec(txs, 2))
        assert result.serial <= result.relatively_atomic
        assert result.relatively_atomic <= result.relatively_serial
        assert result.relatively_serial <= result.relatively_serializable
        assert result.relatively_atomic <= result.relatively_consistent
        assert (
            result.relatively_consistent <= result.relatively_serializable
        )

    def test_rate(self):
        txs = _small_txs()
        result = census_exhaustive(txs, absolute_spec(txs))
        assert result.rate(result.total) == 1.0
        assert result.rate(0) == 0.0

    def test_as_rows_covers_all_classes(self):
        txs = _small_txs()
        rows = census_exhaustive(txs, absolute_spec(txs)).as_rows()
        names = [name for name, _count, _rate in rows]
        assert names == [
            "serial",
            "relatively atomic",
            "relatively consistent",
            "relatively serial",
            "conflict serializable",
            "relatively serializable",
        ]

    def test_budget_exhaustion_counted_not_crashed(self, fig1):
        import itertools

        population = itertools.islice(
            all_interleavings(fig1.transactions), 20
        )
        result = census(population, fig1.spec, consistency_budget=1)
        assert result.total == 20
        assert result.undecided_consistent == 20

    def test_disabled_consistency_counts_nothing(self):
        txs = _small_txs()
        result = census_exhaustive(
            txs, absolute_spec(txs), consistency_budget=None
        )
        assert result.relatively_consistent == 0
        assert result.undecided_consistent == result.total

    def test_figure4_witness_recorded(self, fig4):
        result = census(
            [fig4.schedule("S")], fig4.spec, consistency_budget=100_000
        )
        assert (
            "relatively serial, not relatively consistent"
            in result.witnesses
        )
