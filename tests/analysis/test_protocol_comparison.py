"""Unit tests for the protocol comparison driver (E10)."""

import pytest

from repro.analysis.protocol_comparison import compare_protocols
from repro.workloads.longlived import LongLivedWorkload


@pytest.fixture(scope="module")
def rows():
    return compare_protocols(
        lambda seed: LongLivedWorkload(
            n_objects=4, n_long=1, n_short=3, short_ops=1, seed=seed
        ).build(),
        seeds=(0, 1, 2),
    )


class TestCompareProtocols:
    def test_all_five_protocols_reported(self, rows):
        assert {row.protocol for row in rows} == {
            "strict-2pl",
            "sgt",
            "altruistic",
            "rel-locking",
            "rsgt",
        }

    def test_every_run_was_correct(self, rows):
        assert all(row.all_correct for row in rows)

    def test_all_seeds_completed(self, rows):
        assert all(row.runs == 3 for row in rows)

    def test_metrics_are_positive(self, rows):
        for row in rows:
            assert row.mean_makespan > 0
            assert row.mean_throughput > 0
            assert row.mean_response > 0

    def test_short_role_response_reported(self, rows):
        for row in rows:
            assert row.mean_short_response is not None
            assert row.mean_short_response > 0

    def test_rsgt_beats_2pl_on_short_response(self, rows):
        # The paper's Section 5 claim: relaxing the long transaction's
        # atomicity lets short transactions through earlier.
        by_name = {row.protocol: row for row in rows}
        assert (
            by_name["rsgt"].mean_short_response
            <= by_name["strict-2pl"].mean_short_response
        )

    def test_parallel_rows_identical_to_serial(self, rows):
        parallel = compare_protocols(
            lambda seed: LongLivedWorkload(
                n_objects=4, n_long=1, n_short=3, short_ops=1, seed=seed
            ).build(),
            seeds=(0, 1, 2),
            jobs=2,
        )
        assert parallel == rows
