"""Smoke tests: every shipped example runs clean and says what it must."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "Atomicity(T1, T2): r1[x] w1[x] | w1[z] r1[y]" in out
        assert "they are identical" in out

    def test_banking_audit(self):
        out = _run("banking_audit.py")
        assert "torn schedule" in out
        assert "relatively serializable: False" in out
        assert "conflict serializable: False" in out
        assert "rsgt" in out

    def test_cad_collaboration(self):
        out = _run("cad_collaboration.py")
        assert "relatively serializable = True" in out
        assert "relatively serializable = False" in out
        assert "rsgt" in out

    def test_long_lived_transactions(self):
        out = _run("long_lived_transactions.py")
        assert "accepted with donate points:       True" in out
        assert "accepted under absolute atomicity: False" in out
        assert "faster than strict 2PL" in out

    def test_chopping_vs_relative(self):
        out = _run("chopping_vs_relative.py")
        assert "correct" in out
        assert "INCORRECT" in out
        assert "finest correct chopping" in out
        assert "accepted under the per-observer spec: True" in out
