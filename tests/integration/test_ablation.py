"""Integration: both arc families of Definition 3 are load-bearing.

The paper notes Lynch and Farrag–Özsu used push-forward only; these
tests pin down why the RSG needs both directions:

* a crafted instance where the F-only graph accepts a schedule that is
  provably not relatively serializable (B-arcs required for soundness);
* exhaustive checks that the full graph is exact where the weakened
  variants drift.
"""

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.brute import brute_force_relatively_serializable
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction


def _b_arc_witness():
    t1 = Transaction.from_notation(1, "w[a] w[b] w[a]")
    t2 = Transaction.from_notation(2, "w[a] w[b] r[a]")
    t3 = Transaction.from_notation(3, "w[b] r[a] w[a]")
    transactions = [t1, t2, t3]
    spec = RelativeAtomicitySpec(
        transactions,
        {
            (1, 2): "w[a] w[b] | w[a]",
            (1, 3): "w[a] | w[b] w[a]",
            (2, 1): "w[a] | w[b] r[a]",
            (2, 3): "w[a] | w[b] | r[a]",
            (3, 1): "w[b] | r[a] w[a]",
            (3, 2): "w[b] r[a] | w[a]",
        },
    )
    schedule = Schedule.from_notation(
        transactions,
        "w1[a] w2[a] w3[b] w1[b] w1[a] w2[b] r2[a] r3[a] w3[a]",
    )
    return transactions, spec, schedule


class TestBArcWitness:
    def test_schedule_is_not_relatively_serializable(self):
        _txs, spec, schedule = _b_arc_witness()
        assert not brute_force_relatively_serializable(schedule, spec)

    def test_full_rsg_correctly_rejects(self):
        _txs, spec, schedule = _b_arc_witness()
        assert not RelativeSerializationGraph(schedule, spec).is_acyclic

    def test_f_only_graph_wrongly_accepts(self):
        # The Lynch / Farrag–Özsu graph shape (push forward only) is
        # unsound on this instance — the pull-backward arcs matter.
        _txs, spec, schedule = _b_arc_witness()
        f_only = RelativeSerializationGraph(
            schedule, spec, include_b_arcs=False
        )
        assert f_only.is_acyclic

    def test_cycle_uses_a_pull_backward_arc(self):
        from repro.core.rsg import ArcKind

        _txs, spec, schedule = _b_arc_witness()
        rsg = RelativeSerializationGraph(schedule, spec)
        cycle = rsg.cycle
        assert cycle is not None
        kinds_on_cycle = set()
        for a, b in zip(cycle, cycle[1:]):
            kinds_on_cycle.update(rsg.arc_kinds(a, b))
        assert ArcKind.PULL_BACKWARD in kinds_on_cycle


class TestDOnlyIsNeverCyclic:
    def test_d_arcs_alone_follow_schedule_order(self):
        # Without unit arcs, every arc points forward in the schedule —
        # the graph is acyclic by construction, so the variant accepts
        # everything and is grossly unsound.
        _txs, spec, schedule = _b_arc_witness()
        d_only = RelativeSerializationGraph(
            schedule, spec, include_f_arcs=False, include_b_arcs=False
        )
        assert d_only.is_acyclic
