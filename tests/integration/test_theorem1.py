"""Integration: Theorem 1 cross-validated against brute force.

Theorem 1: a schedule is relatively serializable iff RSG(S) is acyclic.
These tests run the graph test and the definition-level enumeration side
by side — exhaustively on small instances, randomized on larger ones.
"""

import itertools
import random

from repro.core.brute import brute_force_relatively_serializable
from repro.core.checkers import is_relatively_serial
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import conflict_equivalent
from repro.core.transactions import Transaction
from repro.specs.builders import random_spec, uniform_spec
from repro.workloads.enumerate import all_interleavings
from repro.workloads.random_schedules import (
    random_interleaving,
    random_transactions,
)


class TestExhaustive:
    def test_all_interleavings_of_a_conflicting_pair(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x] r[y]"),
            Transaction.from_notation(2, "w[x] w[y]"),
        ]
        for unit_size in (1, 2, 3):
            spec = uniform_spec(txs, unit_size)
            for schedule in all_interleavings(txs):
                rsg_says = RelativeSerializationGraph(
                    schedule, spec
                ).is_acyclic
                brute_says = brute_force_relatively_serializable(
                    schedule, spec
                )
                assert rsg_says == brute_says, (
                    f"unit_size={unit_size}: {schedule}"
                )

    def test_all_interleavings_of_three_writers(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[y]"),
            Transaction.from_notation(2, "w[y] w[x]"),
            Transaction.from_notation(3, "w[x]"),
        ]
        spec = random_spec(txs, 0.5, seed=13)
        for schedule in all_interleavings(txs):
            assert RelativeSerializationGraph(
                schedule, spec
            ).is_acyclic == brute_force_relatively_serializable(
                schedule, spec
            ), str(schedule)

    def test_figure1_prefix_census_agrees(self, fig1):
        # The first 300 interleavings of the paper's own instance.
        for schedule in itertools.islice(
            all_interleavings(fig1.transactions), 300
        ):
            assert RelativeSerializationGraph(
                schedule, fig1.spec
            ).is_acyclic == brute_force_relatively_serializable(
                schedule, fig1.spec
            ), str(schedule)


class TestRandomized:
    def test_random_instances_agree(self):
        rng = random.Random(99)
        for trial in range(40):
            txs = random_transactions(
                n_transactions=3,
                ops_per_transaction=(1, 3),
                n_objects=2,
                write_probability=0.6,
                seed=rng.randint(0, 10_000),
            )
            spec = random_spec(txs, 0.5, seed=rng.randint(0, 10_000))
            schedule = random_interleaving(txs, seed=rng.randint(0, 10_000))
            assert RelativeSerializationGraph(
                schedule, spec
            ).is_acyclic == brute_force_relatively_serializable(
                schedule, spec
            ), f"trial {trial}: {schedule}"

    def test_extracted_witnesses_always_verify(self):
        rng = random.Random(7)
        verified = 0
        for trial in range(40):
            txs = random_transactions(
                3, (1, 4), 3, write_probability=0.5, seed=rng.randint(0, 10_000)
            )
            spec = random_spec(txs, 0.4, seed=rng.randint(0, 10_000))
            schedule = random_interleaving(txs, seed=rng.randint(0, 10_000))
            rsg = RelativeSerializationGraph(schedule, spec)
            if not rsg.is_acyclic:
                continue
            witness = rsg.equivalent_relatively_serial_schedule()
            assert conflict_equivalent(schedule, witness)
            assert is_relatively_serial(witness, spec)
            verified += 1
        assert verified > 10
