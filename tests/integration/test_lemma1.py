"""Integration: Lemma 1 — absolute atomicity collapses to classical CSR.

"the set of relatively serializable schedules is exactly the same as the
set of conflict serializable schedules under absolute atomicity."
"""

import random

from repro.core.checkers import is_relatively_atomic, is_relatively_serial
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.serializability import (
    equivalent_serial_schedule,
    is_conflict_serializable,
)
from repro.core.transactions import Transaction
from repro.specs.builders import absolute_spec
from repro.workloads.enumerate import all_interleavings
from repro.workloads.random_schedules import (
    random_interleaving,
    random_transactions,
)


class TestExhaustiveCollapse:
    def test_rsr_equals_csr_on_all_interleavings(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "w[x] r[y]"),
            Transaction.from_notation(3, "w[y]"),
        ]
        spec = absolute_spec(txs)
        for schedule in all_interleavings(txs):
            assert RelativeSerializationGraph(
                schedule, spec
            ).is_acyclic == is_conflict_serializable(schedule), str(schedule)

    def test_relatively_atomic_equals_serial(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "w[x]"),
        ]
        spec = absolute_spec(txs)
        for schedule in all_interleavings(txs):
            assert (
                is_relatively_atomic(schedule, spec) == schedule.is_serial
            )

    def test_every_serial_schedule_is_relatively_serial(self):
        # Lemma 1's easy direction, checked over all serial orders.
        import itertools

        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "w[x] r[y]"),
            Transaction.from_notation(3, "w[y]"),
        ]
        spec = absolute_spec(txs)
        for order in itertools.permutations([1, 2, 3]):
            schedule = Schedule.serial(txs, order)
            assert is_relatively_serial(schedule, spec)


class TestLemma1WitnessChain:
    def test_relatively_serial_schedules_are_conflict_serializable(self):
        # Lemma 1 proper: under absolute atomicity, every relatively
        # serial schedule is conflict equivalent to a serial one.
        rng = random.Random(5)
        found = 0
        for _ in range(60):
            txs = random_transactions(
                3, (1, 3), 2, write_probability=0.6, seed=rng.randint(0, 9999)
            )
            spec = absolute_spec(txs)
            schedule = random_interleaving(txs, seed=rng.randint(0, 9999))
            if not is_relatively_serial(schedule, spec):
                continue
            serial = equivalent_serial_schedule(schedule)  # must not raise
            assert serial.is_serial
            found += 1
        assert found > 5

    def test_randomized_collapse(self):
        rng = random.Random(11)
        for _ in range(60):
            txs = random_transactions(
                4, (1, 4), 3, write_probability=0.5, seed=rng.randint(0, 9999)
            )
            spec = absolute_spec(txs)
            schedule = random_interleaving(txs, seed=rng.randint(0, 9999))
            assert RelativeSerializationGraph(
                schedule, spec
            ).is_acyclic == is_conflict_serializable(schedule)
