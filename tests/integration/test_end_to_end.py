"""End-to-end integration: workloads -> protocols -> engine -> theory.

The full pipeline a user of the library would run: build a scenario,
schedule it online with a protocol, execute the committed history against
real data, and verify both the theory-level class membership and the
application-level invariant.
"""

from repro.core.rsg import (
    RelativeSerializationGraph,
    is_relatively_serializable,
)
from repro.core.serializability import is_conflict_serializable
from repro.engine.executor import ScheduleExecutor
from repro.protocols import RSGTScheduler, TwoPhaseLockingScheduler
from repro.sim.runner import simulate_bundle
from repro.workloads.banking import BankingWorkload
from repro.workloads.cad import CadWorkload
from repro.workloads.longlived import LongLivedWorkload


class TestBankingPipeline:
    def test_rsgt_banking_run_keeps_audits_consistent(self):
        bundle = BankingWorkload(
            n_families=2,
            accounts_per_family=2,
            customers_per_family=2,
            seed=3,
        ).build()
        result = simulate_bundle(bundle, RSGTScheduler(bundle.spec))
        schedule = result.schedule
        assert is_relatively_serializable(schedule, bundle.spec)

        trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
            schedule
        )
        expected_total = bundle.metadata["expected_total"]
        assert sum(trace.final_state.values()) == expected_total
        # The bank audit is atomic with respect to everything: its
        # snapshot must sum to the expected total.
        (audit,) = bundle.transactions_with_role("bank-audit")
        view = trace.transaction_view(audit.tx_id)
        assert sum(view.values()) == expected_total

    def test_credit_audits_see_consistent_family_totals(self):
        bundle = BankingWorkload(
            n_families=2,
            accounts_per_family=2,
            customers_per_family=2,
            seed=4,
        ).build()
        workload = BankingWorkload(
            n_families=2,
            accounts_per_family=2,
            customers_per_family=2,
            seed=4,
        )
        result = simulate_bundle(bundle, RSGTScheduler(bundle.spec))
        trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
            result.schedule
        )
        family_of = bundle.metadata["family_of"]
        per_family_expected = 100 * bundle.metadata["accounts_per_family"]
        for audit in bundle.transactions_with_role("credit-audit"):
            view = trace.transaction_view(audit.tx_id)
            family = family_of[audit.tx_id]
            accounts = workload.family_accounts(family)
            assert sum(view[a] for a in accounts) == per_family_expected


class TestCadPipeline:
    def test_rsgt_cad_run_is_relatively_serializable(self):
        bundle = CadWorkload(
            n_teams=2, designers_per_team=2, parts_per_team=2, seed=1
        ).build()
        result = simulate_bundle(bundle, RSGTScheduler(bundle.spec))
        assert is_relatively_serializable(result.schedule, bundle.spec)
        trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
            result.schedule
        )
        total_edits = sum(
            1 for tx in bundle.transactions for op in tx if op.is_write
        )
        assert sum(trace.final_state.values()) == total_edits


class TestLongLivedPipeline:
    def test_relative_spec_reduces_short_latency_vs_2pl(self):
        import statistics

        gains = []
        for seed in range(4):
            bundle = LongLivedWorkload(
                n_objects=6, n_long=1, n_short=4, short_ops=1, seed=seed
            ).build()
            strict = simulate_bundle(bundle, TwoPhaseLockingScheduler())
            relaxed = simulate_bundle(bundle, RSGTScheduler(bundle.spec))
            assert is_conflict_serializable(strict.schedule)
            assert is_relatively_serializable(relaxed.schedule, bundle.spec)
            gains.append(
                strict.mean_response_time_of("short")
                - relaxed.mean_response_time_of("short")
            )
        # On average across seeds the relaxed protocol wins.
        assert statistics.mean(gains) > 0

    def test_final_counter_values_are_write_counts(self):
        bundle = LongLivedWorkload(
            n_objects=4, n_long=1, n_short=3, short_ops=1, seed=2
        ).build()
        result = simulate_bundle(bundle, RSGTScheduler(bundle.spec))
        trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
            result.schedule
        )
        writes_per_object: dict[str, int] = {}
        for tx in bundle.transactions:
            for op in tx:
                if op.is_write:
                    writes_per_object[op.obj] = (
                        writes_per_object.get(op.obj, 0) + 1
                    )
        for obj, count in writes_per_object.items():
            assert trace.final_state[obj] == count


class TestOnlineOfflineConsistency:
    def test_online_graph_equals_offline_graph_at_the_end(self):
        # After a full no-abort run, the RSGT scheduler's graph must be
        # the offline RSG of the committed history.
        bundle = LongLivedWorkload(
            n_objects=3, n_long=1, n_short=2, short_ops=1, seed=0
        ).build()
        scheduler = RSGTScheduler(bundle.spec)
        result = simulate_bundle(bundle, scheduler)
        offline = RelativeSerializationGraph(result.schedule, bundle.spec)
        online_edges = {
            (a, b, labels)
            for a, b, labels in scheduler._graph.labelled_edges()
        }
        offline_edges = {
            (a, b, labels)
            for a, b, labels in offline.graph.labelled_edges()
        }
        if result.total_restarts == 0:
            assert online_edges == offline_edges
