"""Live observability plane: inspect, metricsx, dump, flight recorder.

The headline test here is the acceptance scenario for the
introspection verb: a transaction parked in WAIT must show up in a
concurrent ``inspect`` response as a live wait-for edge, *while it is
still parked*.
"""

import asyncio
import json

import pytest

from repro.service.client import ServiceClient, ServiceError

from tests.service.util import running_server


def _parse_dump(text):
    """Parse a flight dump; returns (header, event payloads)."""
    lines = [json.loads(line) for line in text.splitlines() if line]
    assert lines, "dump is empty"
    header, events = lines[0], lines[1:]
    assert "flight" in header and "rings" in header
    assert header["events"] == len(events)
    for event in events:
        assert "ring" in event and "kind" in event and "seq" in event
    return header, events


async def _connect(server):
    return await ServiceClient.connect(server.host, server.port)


class TestInspect:
    def test_wait_edge_visible_while_parked(self):
        async def scenario():
            async with running_server() as server:
                sessions = await _connect(server)
                inspector = await _connect(server)
                await sessions.tenant(
                    "t", protocol="2pl", objects={"x": 0, "y": 0}
                )
                holder = (await sessions.begin("r[x] w[y]", tenant="t"))[
                    "txn"
                ]
                await sessions.read(holder)  # read lock on x

                blocked = await _connect(server)
                waiter = (await blocked.begin("w[x]", tenant="t"))["txn"]
                write_task = asyncio.ensure_future(blocked.write(waiter))

                # Poll inspect from a third connection until the write
                # is parked: the wait-for edge must be visible live.
                snap = None
                for _ in range(500):
                    response = await inspector.inspect("t")
                    snap = response["tenants"]["t"]
                    if snap["waiting_sessions"]:
                        break
                    await asyncio.sleep(0.005)
                assert snap is not None
                assert snap["waiting_sessions"] == [waiter]
                assert holder in snap["waits_for"][str(waiter)]
                assert snap["protocol"] == "strict-2pl"
                assert waiter in snap["open_sessions"]
                assert snap["live"] >= 2
                # Both incarnations hold an open txn span.
                assert set(response["open_spans"]) >= {holder, waiter}

                # Release: the holder finishes, the waiter gets the lock.
                await sessions.write(holder)
                await sessions.commit(holder)
                granted = await write_task
                assert granted["ok"]
                await blocked.commit(waiter)

                after = (await inspector.inspect("t"))["tenants"]["t"]
                assert after["waiting_sessions"] == []
                assert after["waits_for"] == {}

                for client in (sessions, inspector, blocked):
                    await client.close()

        asyncio.run(scenario())

    def test_rsg_census_present_for_rsgt_tenants(self):
        async def scenario():
            async with running_server() as server:
                client = await _connect(server)
                await client.tenant("r", protocol="rsgt", objects={"x": 0})
                txn = (await client.begin("r[x] w[x]", tenant="r"))["txn"]
                await client.read(txn)
                await client.write(txn)
                await client.commit(txn)
                snap = (await client.inspect("r"))["tenants"]["r"]
                rsg = snap["rsg"]
                assert rsg is not None
                assert rsg["nodes"] >= 1
                assert set(rsg["arcs"]) == {"I", "D", "F", "B"}
                assert rsg["certified"] >= 1
                await client.close()

        asyncio.run(scenario())

    def test_unknown_tenant_is_a_clean_error(self):
        async def scenario():
            async with running_server() as server:
                client = await _connect(server)
                with pytest.raises(ServiceError) as exc_info:
                    await client.inspect("nope")
                assert "no tenant 'nope'" in str(exc_info.value)
                await client.close()

        asyncio.run(scenario())


class TestMetricsVerbs:
    def test_metrics_tenant_filter(self):
        async def scenario():
            async with running_server() as server:
                client = await _connect(server)
                for name in ("alpha", "beta"):
                    await client.tenant(name, objects={"x": 0})
                    txn = (await client.begin("r[x]", tenant=name))["txn"]
                    await client.read(txn)
                    await client.commit(txn)
                full = (await client.metrics())["metrics"]
                assert any("alpha" in key for key in full["counters"])
                filtered = (await client.metrics(tenant="alpha"))["metrics"]
                assert filtered["counters"]
                assert all(
                    "beta" not in key for key in filtered["counters"]
                )

                with pytest.raises(ServiceError) as exc_info:
                    await client.metrics(tenant="ghost")
                assert "no tenant 'ghost'" in str(exc_info.value)
                assert "alpha" in str(exc_info.value)  # names the known
                await client.close()

        asyncio.run(scenario())

    def test_metricsx_exposition_includes_verb_latency_histogram(self):
        async def scenario():
            async with running_server() as server:
                client = await _connect(server)
                await client.health()
                exposition = (await client.metricsx())["exposition"]
                assert "# TYPE service_verb_latency_us histogram" in (
                    exposition
                )
                assert 'service_verb_latency_us_bucket{verb="health"' in (
                    exposition
                )
                assert 'le="+Inf"' in exposition
                await client.close()

        asyncio.run(scenario())

    def test_shed_retry_hints_recorded_as_distribution(self):
        async def scenario():
            async with running_server(max_sessions=1) as server:
                client = await _connect(server)
                await client.tenant("t", objects={"x": 0})
                held = (await client.begin("r[x]", tenant="t"))["txn"]
                shedder = await _connect(server)
                for _ in range(3):
                    with pytest.raises(ServiceError) as exc_info:
                        await shedder.begin("r[x]", tenant="t")
                    assert exc_info.value.retry_after_ms is not None
                hist = server.metrics.histogram("service.retry_after_ms")
                assert hist is not None and hist.count == 3
                report = server.metrics.to_dict()
                assert "service.retry_after_ms" in report["histograms"]
                await client.read(held)
                await client.commit(held)
                await client.close()
                await shedder.close()

        asyncio.run(scenario())


class TestFlightRecorder:
    def test_dump_verb_returns_parseable_jsonl(self):
        async def scenario():
            async with running_server() as server:
                client = await _connect(server)
                await client.tenant("t", objects={"x": 0})
                txn = (await client.begin("r[x]", tenant="t"))["txn"]
                await client.read(txn)
                await client.commit(txn)
                response = await client.dump("verb-test")
                header, events = _parse_dump(response["dump"])
                assert header["flight"] == "verb-test"
                assert "t" in header["rings"]
                kinds = {event["kind"] for event in events}
                assert {"session-admit", "grant", "wal-apply"} <= kinds
                # No directory configured: inline only, no path field.
                assert "path" not in response
                await client.close()

        asyncio.run(scenario())

    def test_drain_writes_flight_dump(self, tmp_path):
        async def scenario():
            async with running_server(flight_dir=tmp_path) as server:
                client = await _connect(server)
                await client.tenant("t", objects={"x": 0})
                txn = (await client.begin("r[x]", tenant="t"))["txn"]
                await client.read(txn)
                await client.commit(txn)
                await client.close()
                report = await server.drain("SIGTERM")
                assert report["ok"]
                dump_path = report["flight_dump"]
                assert dump_path is not None
                assert "drain-SIGTERM" in str(dump_path)
                from pathlib import Path

                _parse_dump(Path(dump_path).read_text())

        asyncio.run(scenario())

    def test_store_crash_triggers_auto_dump(self, tmp_path):
        async def scenario():
            async with running_server(
                chaos=True, flight_dir=tmp_path
            ) as server:
                client = await _connect(server)
                await client.tenant("t", objects={"x": 0})
                txn = (await client.begin("w[x]", tenant="t"))["txn"]
                await client.write(txn, value=1)
                await client.crash("t")
                crash_dumps = [
                    path
                    for path in server.recorder.dumped
                    if "crash" in path.name
                ]
                assert crash_dumps, "store crash did not auto-dump"
                _, events = _parse_dump(crash_dumps[0].read_text())
                crash_events = [
                    event for event in events if event["kind"] == "crash"
                ]
                assert crash_events
                assert crash_events[0]["ring"] == "t"
                await client.close()

        asyncio.run(scenario())

    def test_watchdog_fire_triggers_auto_dump(self, tmp_path):
        async def scenario():
            overrides = dict(
                flight_dir=tmp_path,
                watchdog_threshold=1,
                wait_retry_initial_ms=1,
                wait_retry_cap_ms=2,
            )
            async with running_server(**overrides) as server:
                holder_client = await _connect(server)
                await holder_client.tenant(
                    "t", protocol="2pl", objects={"x": 0}
                )
                holder = (
                    await holder_client.begin("w[x] w[x]", tenant="t")
                )["txn"]
                await holder_client.write(holder, value=1)

                # A second writer WAITs behind the lock; with the stall
                # watchdog at 1, its first retry fires the watchdog.
                blocked_client = await _connect(server)
                waiter = (await blocked_client.begin("w[x]", tenant="t"))[
                    "txn"
                ]
                try:
                    await blocked_client.write(waiter, value=2)
                except ServiceError:
                    pass  # either side may be the watchdog's victim

                dumps = [
                    path
                    for path in server.recorder.dumped
                    if "watchdog" in path.name
                ]
                assert dumps, "watchdog fire did not auto-dump"
                _, events = _parse_dump(dumps[0].read_text())
                assert any(
                    event["kind"] == "watchdog" for event in events
                )
                snap = server.tenants["t"].scheduler.snapshot()
                assert snap["watchdog_fires"] >= 1
                await holder_client.close()
                await blocked_client.close()

        asyncio.run(scenario())
