"""Unit tests for the load-shedding admission controller."""

import random

import pytest

from repro.service import AdmissionController


class TestBudget:
    def test_admits_up_to_the_limit_then_sheds(self):
        gate = AdmissionController(3)
        assert [gate.try_admit() for _ in range(3)] == [True] * 3
        assert gate.try_admit() is False
        assert gate.inflight == 3
        assert gate.shed == 1
        assert gate.peak == 3

    def test_release_reopens_a_slot(self):
        gate = AdmissionController(1)
        assert gate.try_admit()
        assert not gate.try_admit()
        gate.release()
        assert gate.try_admit()

    def test_release_without_admit_is_a_bug(self):
        with pytest.raises(RuntimeError):
            AdmissionController(1).release()

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


class TestDrain:
    def test_draining_refuses_everything(self):
        gate = AdmissionController(10)
        gate.start_drain()
        assert not gate.try_admit()
        assert gate.draining
        # Releases still work for the in-flight tail.
        gate._inflight = 1
        gate.release()
        assert gate.inflight == 0


class TestRetryAfter:
    def test_hint_is_jittered_within_its_envelope(self):
        gate = AdmissionController(
            10, retry_after_base_ms=100, rng=random.Random(0)
        )
        for _ in range(10):
            gate.try_admit()
        hints = [gate.retry_after_ms() for _ in range(200)]
        # Pressure 1 + 10/10 = 2 -> scaled base 200, jitter [0, 200].
        assert all(200 <= h <= 400 for h in hints)
        assert len(set(hints)) > 10  # actually jittered

    def test_hint_grows_with_pressure(self):
        rng = random.Random(1)
        empty = AdmissionController(10, retry_after_base_ms=100, rng=rng)
        full = AdmissionController(10, retry_after_base_ms=100, rng=rng)
        for _ in range(10):
            full.try_admit()
        floor_empty = 100  # pressure 1.0
        floor_full = 200  # pressure 2.0
        assert min(full.retry_after_ms() for _ in range(50)) >= floor_full
        assert min(empty.retry_after_ms() for _ in range(50)) >= floor_empty
        assert min(empty.retry_after_ms() for _ in range(50)) < floor_full

    def test_seeded_hints_replay(self):
        a = AdmissionController(4, rng=random.Random(42))
        b = AdmissionController(4, rng=random.Random(42))
        assert [a.retry_after_ms() for _ in range(20)] == [
            b.retry_after_ms() for _ in range(20)
        ]
