"""Async helpers shared by the service tests.

There is no async test plugin in the toolchain, so tests drive their
scenarios with ``asyncio.run`` and use this context manager to get a
bound server that is always drained on the way out (which also
exercises the drain-certification path in every test teardown).
"""

from __future__ import annotations

import contextlib

from repro.service import RsrServer, ServiceConfig


@contextlib.asynccontextmanager
async def running_server(**overrides):
    overrides.setdefault("host", "127.0.0.1")
    overrides.setdefault("port", 0)
    server = RsrServer(ServiceConfig(**overrides))
    await server.start()
    try:
        yield server
    finally:
        if not server._stopped.is_set():
            await server.drain("test-teardown")
