"""End-to-end tests for the asyncio transaction service.

Every scenario runs a real server on a real socket via
``tests.service.util.running_server``, whose teardown drains and
certifies — so each test also exercises the graceful-shutdown path.
"""

import asyncio

import pytest

from repro.service import ServiceClient, wire
from repro.service.client import ServiceError
from tests.service.util import running_server


async def _poll(predicate, timeout=3.0, interval=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if await predicate():
            return True
        await asyncio.sleep(interval)
    return False


async def _quiesced(client, tenant):
    async def check():
        health = await client.health()
        stats = health["tenants"].get(tenant, {})
        return stats.get("open_sessions", 1) == 0

    return await _poll(check)


class TestHappyPath:
    def test_begin_read_write_commit_certify(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                await c.tenant("t", "rsgt", {"x": 1})
                begun = await c.begin("r[x] w[y]", tenant="t", cuts=[1])
                txn = begun["txn"]
                assert begun["ops"] == [f"r{txn}[x]", f"w{txn}[y]"]
                read = await c.read(txn, "x")
                assert read["value"] == 1
                assert read["remaining"] == 1
                wrote = await c.write(txn, "y", "forty-two")
                assert wrote["value"] == "forty-two"
                done = await c.commit(txn)
                assert done["committed"] is True
                cert = await c.certify("t")
                assert cert["all_ok"] is True
                record = cert["certifications"][0]
                assert record["survivors"] == [txn]
                assert record["state_ok"] is True
                assert record["witness_ok"] is True
                await c.close()

        asyncio.run(scenario())

    def test_committed_writes_visible_to_later_sessions(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                first = await c.begin("w[x]", tenant="default")
                await c.write(first["txn"], "x", "hello")
                await c.commit(first["txn"])
                second = await c.begin("r[x]", tenant="default")
                read = await c.read(second["txn"], "x")
                assert read["value"] == "hello"
                await c.commit(second["txn"])
                await c.close()

        asyncio.run(scenario())

    def test_step_executes_the_declared_program_blind(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                await c.tenant("t", "rsgt", {"a": 10})
                begun = await c.begin("r[a] w[b]", tenant="t")
                txn = begun["txn"]
                one = await c.step(txn)
                assert one["op"] == f"r{txn}[a]" and one["value"] == 10
                two = await c.step(txn, value="B")
                assert two["op"] == f"w{txn}[b]" and two["value"] == "B"
                await c.commit(txn)
                await c.close()

        asyncio.run(scenario())


class TestValidation:
    def test_bad_program_is_refused(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                with pytest.raises(ServiceError) as excinfo:
                    await c.begin("frobnicate[x]")
                assert excinfo.value.code == wire.ERR_BAD_REQUEST
                # The refused begin must not leak its admission slot.
                assert server.admission.inflight == 0
                await c.close()

        asyncio.run(scenario())

    def test_cuts_on_a_classical_protocol_are_refused(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                await c.tenant("t", "2pl")
                with pytest.raises(ServiceError) as excinfo:
                    await c.begin("r[x] w[x]", tenant="t", cuts=[1])
                assert excinfo.value.code == wire.ERR_BAD_REQUEST
                await c.close()

        asyncio.run(scenario())

    def test_out_of_range_cuts_are_refused(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                with pytest.raises(ServiceError) as excinfo:
                    await c.begin("r[x] w[x]", cuts=[5])
                assert excinfo.value.code == wire.ERR_BAD_REQUEST
                assert server.admission.inflight == 0
                await c.close()

        asyncio.run(scenario())

    def test_ops_must_follow_the_declared_program(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                await c.tenant("t", "rsgt", {"x": 0})
                begun = await c.begin("r[x] w[y]", tenant="t")
                txn = begun["txn"]
                with pytest.raises(ServiceError) as excinfo:
                    await c.write(txn, "y", 1)  # next op is the read
                assert excinfo.value.code == wire.ERR_BAD_REQUEST
                with pytest.raises(ServiceError) as excinfo:
                    await c.read(txn, "z")  # wrong object
                assert excinfo.value.code == wire.ERR_BAD_REQUEST
                await c.read(txn, "x")
                await c.write(txn, "y", 1)
                with pytest.raises(ServiceError) as excinfo:
                    await c.step(txn)  # program exhausted
                assert excinfo.value.code == wire.ERR_BAD_REQUEST
                await c.commit(txn)
                await c.close()

        asyncio.run(scenario())

    def test_commit_requires_the_whole_program(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                begun = await c.begin("w[x] w[y]")
                await c.write(begun["txn"], "x", 1)
                with pytest.raises(ServiceError) as excinfo:
                    await c.commit(begun["txn"])
                assert excinfo.value.code == wire.ERR_BAD_REQUEST
                await c.write(begun["txn"], "y", 2)
                await c.commit(begun["txn"])
                await c.close()

        asyncio.run(scenario())

    def test_unknown_txn_and_post_close_errors(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                with pytest.raises(ServiceError) as excinfo:
                    await c.read(999, "x")
                assert excinfo.value.code == wire.ERR_UNKNOWN_TXN
                begun = await c.begin("w[x]")
                txn = begun["txn"]
                await c.write(txn, "x", 1)
                await c.commit(txn)
                with pytest.raises(ServiceError) as excinfo:
                    await c.write(txn, "x", 2)
                assert excinfo.value.code == wire.ERR_BAD_REQUEST
                aborted = await c.begin("w[x]")
                await c.abort(aborted["txn"])
                with pytest.raises(ServiceError) as excinfo:
                    await c.write(aborted["txn"], "x", 3)
                assert excinfo.value.code == wire.ERR_ABORTED
                await c.close()

        asyncio.run(scenario())

    def test_unknown_verb_and_malformed_json(self):
        async def scenario():
            async with running_server() as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                import json

                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert response["error"] == wire.ERR_BAD_REQUEST
                writer.write(b'{"do": "frobnicate"}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["error"] == wire.ERR_BAD_REQUEST
                writer.close()
                await writer.wait_closed()

        asyncio.run(scenario())


class TestAdmissionControl:
    def test_begins_beyond_the_budget_are_shed_with_retry_hint(self):
        async def scenario():
            async with running_server(max_sessions=2) as server:
                c = await ServiceClient.connect(server.host, server.port)
                first = await c.begin("w[x]")
                await c.begin("w[y]")
                with pytest.raises(ServiceError) as excinfo:
                    await c.begin("w[z]")
                assert excinfo.value.code == wire.ERR_OVERLOADED
                assert excinfo.value.retry_after_ms > 0
                assert server.admission.shed == 1
                # Finishing a session reopens the gate.
                await c.write(first["txn"], "x", 1)
                await c.commit(first["txn"])
                third = await c.begin("w[z]")
                assert third["ok"]
                await c.close()

        asyncio.run(scenario())


class TestDeadlines:
    def test_expired_session_is_undone_on_next_request(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                await c.tenant("t", "rsgt", {"x": 0})
                begun = await c.begin(
                    "w[x] w[x]", tenant="t", deadline_ms=60
                )
                txn = begun["txn"]
                await c.write(txn, "x", "dirty")
                await asyncio.sleep(0.12)
                with pytest.raises(ServiceError) as excinfo:
                    await c.write(txn, "x", "again")
                assert excinfo.value.code == wire.ERR_DEADLINE
                # The dirty write was rolled back through the WAL.
                probe = await c.begin("r[x]", tenant="t")
                read = await c.read(probe["txn"], "x")
                assert read["value"] == 0
                await c.commit(probe["txn"])
                # Both the expired session and the probe freed their
                # admission slots exactly once.
                assert server.admission.inflight == 0
                await c.close()

        asyncio.run(scenario())

    def test_reaper_expires_sessions_of_quiet_clients(self):
        async def scenario():
            async with running_server(reap_interval_s=0.03) as server:
                c = await ServiceClient.connect(server.host, server.port)
                begun = await c.begin("w[x]", deadline_ms=50)
                await c.write(begun["txn"], "x", "dirty")

                async def reaped():
                    health = await c.health()
                    stats = health["tenants"]["default"]
                    return stats["open_sessions"] == 0

                assert await _poll(reaped)
                assert server.admission.inflight == 0
                assert (
                    server.metrics.counter_value(
                        "service.reaped", tenant="default"
                    )
                    == 1
                )
                await c.close()

        asyncio.run(scenario())

    def test_wait_blocked_op_expires_at_its_deadline(self):
        async def scenario():
            async with running_server(op_timeout_s=0.15) as server:
                holder = await ServiceClient.connect(
                    server.host, server.port
                )
                blocked = await ServiceClient.connect(
                    server.host, server.port
                )
                await holder.tenant("t", "2pl", {"x": 0})
                b1 = await holder.begin("w[x]", tenant="t")
                await holder.write(b1["txn"], "x", "held")
                b2 = await blocked.begin("r[x]", tenant="t")
                with pytest.raises(ServiceError) as excinfo:
                    await blocked.read(b2["txn"], "x")
                assert excinfo.value.code == wire.ERR_DEADLINE
                # The blocked session was undone; the holder lives on.
                await holder.commit(b1["txn"])
                await holder.close()
                await blocked.close()

        asyncio.run(scenario())


class TestWaitRetry:
    def test_blocking_protocol_waits_then_proceeds(self):
        async def scenario():
            async with running_server() as server:
                holder = await ServiceClient.connect(
                    server.host, server.port
                )
                waiter = await ServiceClient.connect(
                    server.host, server.port
                )
                await holder.tenant("t", "2pl", {"x": 0})
                b1 = await holder.begin("w[x]", tenant="t")
                await holder.write(b1["txn"], "x", "one")
                b2 = await waiter.begin("r[x]", tenant="t")
                read_task = asyncio.create_task(
                    waiter.read(b2["txn"], "x")
                )
                await asyncio.sleep(0.08)
                assert not read_task.done()  # parked on the write lock
                await holder.commit(b1["txn"])
                read = await read_task
                assert read["value"] == "one"
                await waiter.commit(b2["txn"])
                assert (
                    server.metrics.counter_value(
                        "service.wait_retries", tenant="t"
                    )
                    >= 1
                )
                await holder.close()
                await waiter.close()

        asyncio.run(scenario())


class TestDisconnect:
    def test_abrupt_disconnect_aborts_and_undoes(self):
        async def scenario():
            async with running_server() as server:
                doomed = await ServiceClient.connect(
                    server.host, server.port
                )
                await doomed.tenant("t", "rsgt", {"x": "initial"})
                begun = await doomed.begin("w[x] w[x]", tenant="t")
                await doomed.write(begun["txn"], "x", "dirty")
                doomed.kill()  # no goodbye
                probe = await ServiceClient.connect(
                    server.host, server.port
                )
                assert await _quiesced(probe, "t")
                check = await probe.begin("r[x]", tenant="t")
                read = await probe.read(check["txn"], "x")
                assert read["value"] == "initial"
                await probe.commit(check["txn"])
                assert server.admission.inflight == 0
                await probe.close()

        asyncio.run(scenario())


class TestCrashRecovery:
    def test_crash_verb_is_gated_behind_chaos_mode(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                await c.begin("w[x]")
                with pytest.raises(ServiceError) as excinfo:
                    await c.crash("default")
                assert excinfo.value.code == wire.ERR_FORBIDDEN
                await c.close()

        asyncio.run(scenario())

    def test_crash_rolls_back_inflight_and_spares_unstarted(self):
        async def scenario():
            async with running_server(chaos=True) as server:
                c = await ServiceClient.connect(server.host, server.port)
                await c.tenant("t", "rsgt", {"x": "safe"})
                dirty = await c.begin("w[x] w[x]", tenant="t")
                await c.write(dirty["txn"], "x", "dirty")
                fresh = await c.begin("w[y]", tenant="t")
                crash = await c.crash("t")
                assert crash["aborted"] == [dirty["txn"]]
                with pytest.raises(ServiceError) as excinfo:
                    await c.write(dirty["txn"], "x", "again")
                assert excinfo.value.code == wire.ERR_ABORTED
                assert excinfo.value.response["reason"] == "store-crash"
                # The unstarted session is untouched and can finish.
                await c.write(fresh["txn"], "y", "alive")
                await c.commit(fresh["txn"])
                probe = await c.begin("r[x]", tenant="t")
                read = await c.read(probe["txn"], "x")
                assert read["value"] == "safe"
                await c.commit(probe["txn"])
                cert = await c.certify("t")
                assert cert["all_ok"] is True
                await c.close()

        asyncio.run(scenario())


class TestDrain:
    def test_drain_lets_inflight_finish_and_exits_zero(self):
        async def scenario():
            async with running_server(drain_timeout_s=2.0) as server:
                c = await ServiceClient.connect(server.host, server.port)
                begun = await c.begin("w[x]")
                await c.write(begun["txn"], "x", 1)
                drain_task = asyncio.create_task(server.drain("test"))
                await asyncio.sleep(0.05)
                with pytest.raises(ServiceError) as excinfo:
                    await c.begin("w[y]")
                assert excinfo.value.code == wire.ERR_DRAINING
                await c.commit(begun["txn"])  # inside the grace window
                report = await drain_task
                assert report["ok"] is True
                assert report["forced_aborts"] == 0
                assert server.exit_code == 0
                await c.close()

        asyncio.run(scenario())

    def test_drain_force_aborts_stragglers_and_still_certifies(self):
        async def scenario():
            async with running_server(drain_timeout_s=0.05) as server:
                c = await ServiceClient.connect(server.host, server.port)
                await c.tenant("t", "rsgt", {"x": 0})
                begun = await c.begin("w[x] w[x]", tenant="t")
                await c.write(begun["txn"], "x", "dirty")
                report = await server.drain("test")
                assert report["forced_aborts"] == 1
                assert report["ok"] is True
                assert server.exit_code == 0
                records = {
                    r["tenant"]: r for r in report["certifications"]
                }
                assert records["t"]["state_ok"] is True
                assert server.tenants["t"].store.snapshot() == {"x": 0}
                assert server.tenants["t"].store.wal_size() == 0

        asyncio.run(scenario())


class TestMultiTenancy:
    def test_tenants_are_isolated_namespaces(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                await c.tenant("blue", "rsgt", {"x": "blue-initial"})
                await c.tenant("green", "2pl", {"x": "green-initial"})
                b = await c.begin("w[x]", tenant="blue")
                await c.write(b["txn"], "x", "blue-write")
                await c.commit(b["txn"])
                g = await c.begin("r[x]", tenant="green")
                read = await c.read(g["txn"], "x")
                assert read["value"] == "green-initial"
                await c.commit(g["txn"])
                cert = await c.certify()
                assert cert["all_ok"] is True
                assert {
                    r["tenant"] for r in cert["certifications"]
                } == {"blue", "green"}
                await c.close()

        asyncio.run(scenario())

    def test_tenant_creation_is_idempotent_but_protocol_sticky(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                first = await c.tenant("t", "sgt")
                assert first["existing"] is False
                again = await c.tenant("t", "sgt")
                assert again["existing"] is True
                with pytest.raises(ServiceError) as excinfo:
                    await c.tenant("t", "2pl")
                assert excinfo.value.code == wire.ERR_BAD_REQUEST
                with pytest.raises(ServiceError) as excinfo:
                    await c.tenant("u", "no-such-protocol")
                assert excinfo.value.code == wire.ERR_BAD_REQUEST
                await c.close()

        asyncio.run(scenario())


class TestObservability:
    def test_health_and_metrics_ride_the_registry(self):
        async def scenario():
            async with running_server() as server:
                c = await ServiceClient.connect(server.host, server.port)
                begun = await c.begin("w[x]")
                await c.write(begun["txn"], "x", 1)
                await c.commit(begun["txn"])
                health = await c.health()
                assert health["status"] == "serving"
                assert health["uptime_s"] >= 0
                stats = health["tenants"]["default"]
                assert stats["committed"] == 1
                assert stats["wal_size"] == 0
                metrics = (await c.metrics())["metrics"]
                assert (
                    metrics["counters"]["service.begins{tenant=default}"]
                    == 1
                )
                assert (
                    metrics["counters"]["service.commits{tenant=default}"]
                    == 1
                )
                latency = metrics["observations"][
                    "service.commit_latency_us{tenant=default}"
                ]
                assert latency["count"] == 1 and latency["min"] >= 0
                # The scheduler's trace events land on the shared bus.
                assert len(server.trace_sink.events) > 0
                await c.close()

        asyncio.run(scenario())
