"""Live chaos-harness tests: seeded fault plans against a real server.

The interleavings are wall-clock dependent by design — the survivor
invariant must hold on every one of them, so each run is a fresh
sample.  The workload and the fault plan themselves stay pinned by the
seed.
"""

import asyncio

from repro.service import ChaosConfig, run_chaos
from tests.service.util import running_server


class TestChaosCertification:
    def test_kills_aborts_stalls_and_a_crash_certify(self):
        async def scenario():
            async with running_server(
                chaos=True, max_sessions=64
            ) as server:
                report = await run_chaos(
                    ChaosConfig(
                        clients=16,
                        seed=7,
                        kill_rate=0.2,
                        abort_rate=0.15,
                        stall_rate=0.2,
                        crash_at=12,
                        stall_ms=2,
                    ),
                    server.host,
                    server.port,
                )
                assert report.ok, report.describe()
                assert report.committed > 0
                assert report.killed >= 1
                assert report.crashes == 1
                assert report.quiesced
                assert report.survivors_match
            assert server.exit_code == 0

        asyncio.run(scenario())

    def test_blocking_protocol_under_chaos(self):
        async def scenario():
            async with running_server(
                chaos=True, max_sessions=64
            ) as server:
                report = await run_chaos(
                    ChaosConfig(
                        clients=12,
                        seed=11,
                        protocol="2pl",
                        tenant="two-phase",
                        kill_rate=0.15,
                        abort_rate=0.1,
                        crash_at=10,
                    ),
                    server.host,
                    server.port,
                )
                assert report.ok, report.describe()
                assert report.committed > 0
            assert server.exit_code == 0

        asyncio.run(scenario())

    def test_load_shedding_under_a_tiny_admission_budget(self):
        async def scenario():
            async with running_server(
                chaos=True, max_sessions=3
            ) as server:
                report = await run_chaos(
                    ChaosConfig(clients=12, seed=3),
                    server.host,
                    server.port,
                )
                # Shed begins are retried per the structured hint, so
                # the fleet still makes it through.
                assert report.ok, report.describe()
                assert report.committed > 0
            assert server.exit_code == 0

        asyncio.run(scenario())

    def test_report_shape_round_trips(self):
        async def scenario():
            async with running_server(chaos=True) as server:
                report = await run_chaos(
                    ChaosConfig(clients=4, seed=1),
                    server.host,
                    server.port,
                )
                payload = report.to_dict()
                assert payload["ok"] == report.ok
                assert payload["clients"] == 4
                assert isinstance(report.describe(), str)

        asyncio.run(scenario())
