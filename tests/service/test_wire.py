"""Unit tests for the NDJSON wire helpers."""

import json

from repro.service import wire


class TestEncoding:
    def test_ok_is_one_json_line(self):
        raw = wire.encode(wire.ok(7, txn=3))
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        assert json.loads(raw) == {"ok": True, "id": 7, "txn": 3}

    def test_ok_without_id_omits_the_field(self):
        assert "id" not in wire.ok(None, value=1)

    def test_err_carries_code_message_and_extras(self):
        payload = wire.err(
            wire.ERR_OVERLOADED, "busy", 9, retry_after_ms=120
        )
        assert payload == {
            "ok": False,
            "error": "overloaded",
            "message": "busy",
            "id": 9,
            "retry_after_ms": 120,
        }

    def test_error_codes_are_distinct(self):
        codes = {
            wire.ERR_OVERLOADED,
            wire.ERR_DRAINING,
            wire.ERR_DEADLINE,
            wire.ERR_ABORTED,
            wire.ERR_BAD_REQUEST,
            wire.ERR_UNKNOWN_TXN,
            wire.ERR_FORBIDDEN,
            wire.ERR_INTERNAL,
        }
        assert len(codes) == 8
