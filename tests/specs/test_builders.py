"""Unit tests for the general spec builders."""

import pytest

from repro.core.transactions import Transaction
from repro.specs.builders import (
    absolute_spec,
    breakpoint_spec,
    finest_spec,
    random_spec,
    uniform_spec,
)


@pytest.fixture()
def txs():
    return [
        Transaction.from_notation(1, "r[x] w[x] w[z] r[y]"),
        Transaction.from_notation(2, "r[y] w[y] r[x]"),
    ]


class TestAbsolute:
    def test_every_view_is_one_unit(self, txs):
        spec = absolute_spec(txs)
        assert spec.is_absolute
        assert len(spec.units(1, 2)) == 1
        assert len(spec.units(2, 1)) == 1


class TestFinest:
    def test_every_operation_its_own_unit(self, txs):
        spec = finest_spec(txs)
        assert spec.atomicity(1, 2).is_finest
        assert len(spec.units(1, 2)) == 4
        assert len(spec.units(2, 1)) == 3

    def test_single_op_transaction(self):
        txs = [
            Transaction.from_notation(1, "w[x]"),
            Transaction.from_notation(2, "r[x]"),
        ]
        spec = finest_spec(txs)
        assert spec.atomicity(1, 2).is_finest
        assert spec.atomicity(1, 2).is_absolute  # both, trivially


class TestUniform:
    def test_unit_size_two(self, txs):
        spec = uniform_spec(txs, 2)
        assert [u.size for u in spec.units(1, 2)] == [2, 2]
        assert [u.size for u in spec.units(2, 1)] == [2, 1]

    def test_large_unit_size_is_absolute(self, txs):
        spec = uniform_spec(txs, 10)
        assert spec.is_absolute

    def test_unit_size_one_is_finest(self, txs):
        spec = uniform_spec(txs, 1)
        assert spec.atomicity(1, 2).is_finest

    def test_rejects_nonpositive(self, txs):
        with pytest.raises(ValueError):
            uniform_spec(txs, 0)


class TestBreakpointSpec:
    def test_per_pair_breakpoints(self, txs):
        spec = breakpoint_spec(txs, {(1, 2): [2], (2, 1): [1]})
        assert spec.atomicity(1, 2).breakpoints == {2}
        assert spec.atomicity(2, 1).breakpoints == {1}

    def test_per_transaction_breakpoints_apply_to_all_observers(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x] w[z] r[y]"),
            Transaction.from_notation(2, "r[y] w[y] r[x]"),
            Transaction.from_notation(3, "w[x] w[y] w[z]"),
        ]
        spec = breakpoint_spec(txs, {1: [2]})
        assert spec.atomicity(1, 2).breakpoints == {2}
        assert spec.atomicity(1, 3).breakpoints == {2}
        assert spec.atomicity(2, 1).is_absolute


class TestRandomSpec:
    def test_deterministic_for_seed(self, txs):
        a = random_spec(txs, 0.5, seed=42)
        b = random_spec(txs, 0.5, seed=42)
        for pair in a.pairs():
            assert a.atomicity(*pair) == b.atomicity(*pair)

    def test_probability_zero_is_absolute(self, txs):
        assert random_spec(txs, 0.0, seed=1).is_absolute

    def test_probability_one_is_finest(self, txs):
        spec = random_spec(txs, 1.0, seed=1)
        assert spec.atomicity(1, 2).is_finest
        assert spec.atomicity(2, 1).is_finest

    def test_rejects_out_of_range_probability(self, txs):
        with pytest.raises(ValueError):
            random_spec(txs, 1.5)
