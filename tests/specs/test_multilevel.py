"""Unit tests for Lynch multilevel atomicity."""

import pytest

from repro.core.transactions import Transaction
from repro.errors import InvalidSpecError
from repro.specs.multilevel import MultilevelHierarchy, multilevel_spec


@pytest.fixture()
def txs():
    return [
        Transaction.from_notation(1, "r[a] w[a] r[b] w[b]"),
        Transaction.from_notation(2, "r[a] w[a]"),
        Transaction.from_notation(3, "r[c] w[c]"),
        Transaction.from_notation(4, "r[a] r[b] r[c]"),
    ]


@pytest.fixture()
def hierarchy():
    # Family {1, 2}, family {3}, and the audit 4 directly under the root.
    return MultilevelHierarchy([[1, 2], [3], 4])


class TestHierarchy:
    def test_transaction_ids(self, hierarchy):
        assert hierarchy.transaction_ids == {1, 2, 3, 4}

    def test_depths(self, hierarchy):
        assert hierarchy.depth(1) == 2
        assert hierarchy.depth(4) == 1

    def test_lca_depths(self, hierarchy):
        assert hierarchy.lca_depth(1, 2) == 1  # same family
        assert hierarchy.lca_depth(1, 3) == 0  # different families
        assert hierarchy.lca_depth(1, 4) == 0  # through the root
        assert hierarchy.lca_depth(4, 3) == 0

    def test_lca_depth_is_symmetric(self, hierarchy):
        for a in (1, 2, 3, 4):
            for b in (1, 2, 3, 4):
                if a != b:
                    assert hierarchy.lca_depth(a, b) == hierarchy.lca_depth(
                        b, a
                    )

    def test_duplicate_id_rejected(self):
        with pytest.raises(InvalidSpecError):
            MultilevelHierarchy([[1, 2], [2]])

    def test_empty_tree_rejected(self):
        with pytest.raises(InvalidSpecError):
            MultilevelHierarchy([])

    def test_unknown_transaction_rejected(self, hierarchy):
        with pytest.raises(InvalidSpecError):
            hierarchy.depth(9)


class TestMultilevelSpec:
    def test_lca_depth_selects_cut_level(self, txs, hierarchy):
        spec = multilevel_spec(
            txs,
            hierarchy,
            {
                1: [[2], [1, 2, 3]],  # coarse to the world, fine in-family
                2: [[], [1]],
                3: [[], [1]],
                4: [[1, 2]],
            },
        )
        # T2 (same family) sees T1 at depth-1 cuts.
        assert spec.atomicity(1, 2).breakpoints == {1, 2, 3}
        # T3 and T4 (LCA at the root) see T1 at depth-0 cuts.
        assert spec.atomicity(1, 3).breakpoints == {2}
        assert spec.atomicity(1, 4).breakpoints == {2}
        # T4 exposes the same cuts to everyone (it sits at depth 1).
        assert spec.atomicity(4, 1).breakpoints == {1, 2}
        assert spec.atomicity(4, 3).breakpoints == {1, 2}

    def test_missing_transaction_defaults_to_absolute(self, txs, hierarchy):
        spec = multilevel_spec(txs, hierarchy, {})
        assert spec.is_absolute

    def test_nesting_violation_rejected(self, txs, hierarchy):
        with pytest.raises(InvalidSpecError):
            multilevel_spec(
                txs,
                hierarchy,
                {1: [[2], [1]]},  # depth-0 cut {2} not in depth-1 {1}
            )

    def test_wrong_level_count_rejected(self, txs, hierarchy):
        with pytest.raises(InvalidSpecError):
            multilevel_spec(txs, hierarchy, {1: [[2]]})  # depth 2 needs 2

    def test_hierarchy_must_match_transaction_set(self, txs):
        with pytest.raises(InvalidSpecError):
            multilevel_spec(txs, [[1, 2], [3]], {})

    def test_nested_sequences_accepted_directly(self, txs):
        spec = multilevel_spec(txs, [[1, 2], [3], 4], {})
        assert spec.is_absolute

    def test_deeper_hierarchy(self):
        txs = [
            Transaction.from_notation(1, "w[a] w[b] w[c]"),
            Transaction.from_notation(2, "w[a]"),
            Transaction.from_notation(3, "w[b]"),
        ]
        # {{1, 2}, 3}: T1-T2 at depth 2, T1-T3 at depth... build a
        # three-level tree: root -> group -> subgroup.
        hierarchy = MultilevelHierarchy([[[1, 2], 3]])
        assert hierarchy.lca_depth(1, 2) == 2
        assert hierarchy.lca_depth(1, 3) == 1
        spec = multilevel_spec(
            txs,
            hierarchy,
            {1: [[], [1], [1, 2]]},
        )
        assert spec.atomicity(1, 2).breakpoints == {1, 2}
        assert spec.atomicity(1, 3).breakpoints == {1}
