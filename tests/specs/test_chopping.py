"""Unit tests for transaction chopping [SSV92]."""

import pytest

from repro.core.transactions import Transaction
from repro.errors import InvalidSpecError
from repro.specs.chopping import (
    Chopping,
    chopping_to_spec,
    finest_correct_chopping,
    is_correct_chopping,
    sc_cycle,
)


def _txs():
    # The classic shape: T1 touches x then y; T2 touches x; T3 touches y.
    return [
        Transaction.from_notation(1, "w[x] w[y]"),
        Transaction.from_notation(2, "r[x] w[x]"),
        Transaction.from_notation(3, "r[y] w[y]"),
    ]


class TestChoppingModel:
    def test_pieces_from_cuts(self):
        txs = _txs()
        chopping = Chopping(tuple(txs), {1: frozenset({1})})
        assert chopping.pieces(1) == [(0, 0), (1, 1)]
        assert chopping.pieces(2) == [(0, 1)]
        assert chopping.piece_count() == 4

    def test_invalid_cut_rejected(self):
        txs = _txs()
        with pytest.raises(InvalidSpecError):
            Chopping(tuple(txs), {1: frozenset({5})})

    def test_unknown_transaction_rejected(self):
        txs = _txs()
        with pytest.raises(InvalidSpecError):
            Chopping(tuple(txs), {9: frozenset({1})})


class TestScCycleTheorem:
    def test_whole_transactions_are_always_correct(self):
        txs = _txs()
        chopping = Chopping(tuple(txs), {})
        assert is_correct_chopping(chopping)

    def test_classic_correct_chop(self):
        # Chopping T1 into [w(x)] [w(y)] is the textbook correct example:
        # T2 only touches x, T3 only touches y, so no piece of T1 is in
        # a C-cycle spanning its S-edge.
        txs = _txs()
        chopping = Chopping(tuple(txs), {1: frozenset({1})})
        assert is_correct_chopping(chopping)

    def test_classic_incorrect_chop(self):
        # Add T4 touching both x and y: now chopping T1 creates the
        # SC-cycle piece1 -C- T4 -C- piece2 -S- piece1.
        txs = _txs() + [Transaction.from_notation(4, "r[x] r[y]")]
        chopping = Chopping(tuple(txs), {1: frozenset({1})})
        cycle = sc_cycle(chopping)
        assert cycle is not None
        assert not is_correct_chopping(chopping)
        # The witness is a closed walk whose nodes are pieces.
        assert cycle[0] == cycle[-1]

    def test_no_conflicts_allows_finest_chop(self):
        txs = [
            Transaction.from_notation(1, "w[a] w[b]"),
            Transaction.from_notation(2, "w[c] w[d]"),
        ]
        chopping = Chopping(
            tuple(txs), {1: frozenset({1}), 2: frozenset({1})}
        )
        assert is_correct_chopping(chopping)


class TestFinestCorrectChopping:
    def test_result_is_correct(self):
        txs = _txs() + [Transaction.from_notation(4, "r[x] r[y]")]
        chopping = finest_correct_chopping(txs)
        assert is_correct_chopping(chopping)

    def test_finds_the_classic_chop(self):
        txs = _txs()
        chopping = finest_correct_chopping(txs)
        assert is_correct_chopping(chopping)
        # T1 can be fully split; T2 and T3 read-then-write the same
        # object, and splitting *them* is fine too (their pieces share
        # no S+C cycle because T1's pieces are singletons).
        assert chopping.piece_count() >= 4

    def test_never_worse_than_whole_transactions(self):
        txs = _txs() + [Transaction.from_notation(4, "r[x] r[y]")]
        chopping = finest_correct_chopping(txs)
        assert chopping.piece_count() >= len(txs)


class TestEmbeddingIntoRelativeAtomicity:
    def test_spec_views_mirror_pieces(self):
        txs = _txs()
        chopping = Chopping(tuple(txs), {1: frozenset({1})})
        spec = chopping_to_spec(chopping)
        assert spec.atomicity(1, 2).breakpoints == {1}
        assert spec.atomicity(1, 3).breakpoints == {1}
        assert spec.atomicity(2, 1).is_absolute

    def test_correct_chopping_executions_are_relatively_serializable(self):
        # Execute the pieces of a correct chopping as separate 2PL
        # transactions; the resulting whole-transaction history must be
        # accepted by the RSG test under the induced spec.
        from repro.core.rsg import is_relatively_serializable
        from repro.workloads.enumerate import all_interleavings
        from repro.core.checkers import is_relatively_atomic

        txs = _txs()
        chopping = Chopping(tuple(txs), {1: frozenset({1})})
        assert is_correct_chopping(chopping)
        spec = chopping_to_spec(chopping)
        # Any schedule in which each piece runs contiguously is
        # relatively atomic under the induced spec, hence accepted.
        piece_respecting = [
            schedule
            for schedule in all_interleavings(txs)
            if is_relatively_atomic(schedule, spec)
        ]
        assert piece_respecting
        for schedule in piece_respecting:
            assert is_relatively_serializable(schedule, spec)
