"""Unit + property tests for the specification lattice."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.rsg import is_relatively_serializable
from repro.core.transactions import Transaction
from repro.errors import InvalidSpecError
from repro.specs.builders import absolute_spec, finest_spec, random_spec
from repro.specs.lattice import is_coarser, join, meet


@pytest.fixture()
def txs():
    return [
        Transaction.from_notation(1, "r[x] w[x] w[z] r[y]"),
        Transaction.from_notation(2, "r[y] w[y] r[x]"),
    ]


class TestOrder:
    def test_absolute_is_bottom(self, txs):
        spec = random_spec(txs, 0.5, seed=1)
        assert is_coarser(absolute_spec(txs), spec)

    def test_finest_is_top(self, txs):
        spec = random_spec(txs, 0.5, seed=2)
        assert is_coarser(spec, finest_spec(txs))

    def test_reflexive(self, txs):
        spec = random_spec(txs, 0.5, seed=3)
        assert is_coarser(spec, spec)

    def test_incomparable_specs(self, txs):
        from repro.core.atomicity import RelativeAtomicitySpec

        a = RelativeAtomicitySpec(txs, {(1, 2): [1]})
        b = RelativeAtomicitySpec(txs, {(1, 2): [2]})
        assert not is_coarser(a, b)
        assert not is_coarser(b, a)

    def test_mismatched_transactions_rejected(self, txs):
        other = [Transaction.from_notation(1, "r[x]")]
        with pytest.raises(InvalidSpecError):
            is_coarser(absolute_spec(txs), absolute_spec(other))


class TestJoinAndMeet:
    def test_join_unions_cuts(self, txs):
        from repro.core.atomicity import RelativeAtomicitySpec

        a = RelativeAtomicitySpec(txs, {(1, 2): [1]})
        b = RelativeAtomicitySpec(txs, {(1, 2): [2]})
        joined = join(a, b)
        assert joined.atomicity(1, 2).breakpoints == {1, 2}

    def test_meet_intersects_cuts(self, txs):
        from repro.core.atomicity import RelativeAtomicitySpec

        a = RelativeAtomicitySpec(txs, {(1, 2): [1, 2]})
        b = RelativeAtomicitySpec(txs, {(1, 2): [2, 3]})
        met = meet(a, b)
        assert met.atomicity(1, 2).breakpoints == {2}

    def test_lattice_laws(self, txs):
        a = random_spec(txs, 0.5, seed=4)
        b = random_spec(txs, 0.5, seed=5)
        assert is_coarser(a, join(a, b))
        assert is_coarser(b, join(a, b))
        assert is_coarser(meet(a, b), a)
        assert is_coarser(meet(a, b), b)

    def test_absorption(self, txs):
        a = random_spec(txs, 0.4, seed=6)
        b = random_spec(txs, 0.6, seed=7)
        absorbed = meet(a, join(a, b))
        for pair in a.pairs():
            assert absorbed.atomicity(*pair) == a.atomicity(*pair)


OBJECTS = ("x", "y")


@st.composite
def spec_pairs(draw):
    n = draw(st.integers(2, 3))
    transactions = []
    for tx_id in range(1, n + 1):
        length = draw(st.integers(1, 3))
        ops = []
        for _ in range(length):
            obj = draw(st.sampled_from(OBJECTS))
            ops.append(f"w[{obj}]" if draw(st.booleans()) else f"r[{obj}]")
        transactions.append(Transaction(tx_id, ops))
    seed_a = draw(st.integers(0, 10_000))
    seed_b = draw(st.integers(0, 10_000))
    p_a = draw(st.floats(0.0, 1.0))
    p_b = draw(st.floats(0.0, 1.0))
    return (
        transactions,
        random_spec(transactions, p_a, seed=seed_a),
        random_spec(transactions, p_b, seed=seed_b),
        draw(st.integers(0, 10_000)),
    )


@given(spec_pairs())
@settings(max_examples=60, deadline=None)
def test_acceptance_monotone_under_the_order(case):
    from repro.workloads.random_schedules import random_interleaving

    transactions, spec_a, spec_b, schedule_seed = case
    schedule = random_interleaving(transactions, seed=schedule_seed)
    joined = join(spec_a, spec_b)
    met = meet(spec_a, spec_b)
    accepted_a = is_relatively_serializable(schedule, spec_a)
    accepted_b = is_relatively_serializable(schedule, spec_b)
    if accepted_a or accepted_b:
        assert is_relatively_serializable(schedule, joined)
    if is_relatively_serializable(schedule, met):
        assert accepted_a and accepted_b
