"""Unit tests for Garcia-Molina compatibility sets."""

import pytest

from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.errors import InvalidSpecError
from repro.specs.compat import compatibility_spec


@pytest.fixture()
def txs():
    return [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "r[x] w[y]"),
        Transaction.from_notation(3, "w[y] w[z]"),
    ]


class TestCompatibilitySpec:
    def test_same_group_gets_finest_views(self, txs):
        spec = compatibility_spec(txs, [[1, 2], [3]])
        assert spec.atomicity(1, 2).is_finest
        assert spec.atomicity(2, 1).is_finest

    def test_cross_group_gets_absolute_views(self, txs):
        spec = compatibility_spec(txs, [[1, 2], [3]])
        assert spec.atomicity(1, 3).is_absolute
        assert spec.atomicity(3, 1).is_absolute
        assert spec.atomicity(2, 3).is_absolute

    def test_singleton_groups_reduce_to_traditional_model(self, txs):
        spec = compatibility_spec(txs, [[1], [2], [3]])
        assert spec.is_absolute

    def test_rejects_transaction_in_two_groups(self, txs):
        with pytest.raises(InvalidSpecError):
            compatibility_spec(txs, [[1, 2], [2, 3]])

    def test_rejects_missing_transaction(self, txs):
        with pytest.raises(InvalidSpecError):
            compatibility_spec(txs, [[1, 2]])

    def test_rejects_unknown_transaction(self, txs):
        with pytest.raises(InvalidSpecError):
            compatibility_spec(txs, [[1, 2], [3, 9]])

    def test_semantics_same_set_interleaves_freely(self, txs):
        # T1 and T2 in one set: interleaving their conflicting ops is
        # relatively serial (finest units never enclose anything).
        from repro.core.checkers import is_relatively_serial

        spec = compatibility_spec(txs, [[1, 2], [3]])
        s = Schedule.from_notation(
            txs, "r1[x] r2[x] w1[x] w2[y] w3[y] w3[z]"
        )
        assert is_relatively_serial(s, spec)

    def test_semantics_cross_set_must_be_atomic(self, txs):
        # T3 inside T2's absolute unit with a dependency: rejected.
        from repro.core.checkers import is_relatively_serial

        spec = compatibility_spec(txs, [[1], [2], [3]])
        s = Schedule.from_notation(
            txs, "r1[x] w1[x] r2[x] w3[y] w3[z] w2[y]"
        )
        assert not is_relatively_serial(s, spec)
