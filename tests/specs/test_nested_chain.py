"""Unit + property tests for nested specification chains."""

import pytest

from repro.core.transactions import Transaction
from repro.specs.builders import nested_spec_chain


@pytest.fixture()
def txs():
    return [
        Transaction.from_notation(1, "r[x] w[x] w[z] r[y]"),
        Transaction.from_notation(2, "r[y] w[y] r[x]"),
        Transaction.from_notation(3, "w[x] w[y] w[z]"),
    ]


class TestChainStructure:
    def test_endpoints_are_absolute_and_finest(self, txs):
        chain = nested_spec_chain(txs, levels=4, seed=0)
        assert chain[0].is_absolute
        for pair in chain[-1].pairs():
            assert chain[-1].atomicity(*pair).is_finest

    def test_cut_sets_are_nested(self, txs):
        chain = nested_spec_chain(txs, levels=5, seed=3)
        for coarse, fine in zip(chain, chain[1:]):
            for pair in coarse.pairs():
                assert coarse.atomicity(*pair).breakpoints <= fine.atomicity(
                    *pair
                ).breakpoints

    def test_level_count(self, txs):
        assert len(nested_spec_chain(txs, levels=3)) == 3

    def test_rejects_degenerate_chain(self, txs):
        with pytest.raises(ValueError):
            nested_spec_chain(txs, levels=1)

    def test_deterministic_for_seed(self, txs):
        a = nested_spec_chain(txs, levels=4, seed=9)
        b = nested_spec_chain(txs, levels=4, seed=9)
        for spec_a, spec_b in zip(a, b):
            for pair in spec_a.pairs():
                assert spec_a.atomicity(*pair) == spec_b.atomicity(*pair)


class TestMonotoneAcceptance:
    def test_rsr_acceptance_monotone_along_chain(self, txs):
        # The provable claim: along a nested chain, every schedule
        # accepted at a coarser level is accepted at every finer level.
        from repro.core.rsg import is_relatively_serializable
        from repro.workloads.random_schedules import random_schedules

        chain = nested_spec_chain(txs, levels=4, seed=1)
        for schedule in random_schedules(txs, count=30, seed=5):
            previous = None
            for spec in chain:
                accepted = is_relatively_serializable(schedule, spec)
                if previous is True:
                    assert accepted, str(schedule)
                previous = accepted

    def test_relatively_serial_monotone_along_chain(self, txs):
        from repro.core.checkers import is_relatively_serial
        from repro.workloads.random_schedules import random_schedules

        chain = nested_spec_chain(txs, levels=4, seed=2)
        for schedule in random_schedules(txs, count=30, seed=6):
            previous = None
            for spec in chain:
                verdict = is_relatively_serial(schedule, spec)
                if previous is True:
                    assert verdict, str(schedule)
                previous = verdict
