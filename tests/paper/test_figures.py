"""Every claim the paper makes about its figures, as tests.

This module is the reproduction's backbone: each test quotes (in its
docstring or comments) the paper sentence it verifies.
"""

from repro.core.checkers import (
    is_relatively_atomic,
    is_relatively_serial,
)
from repro.core.consistent import is_relatively_consistent
from repro.core.rsg import (
    ArcKind,
    RelativeSerializationGraph,
    is_relatively_serializable,
)
from repro.core.schedules import Schedule, conflict_equivalent
from repro.core.serializability import is_conflict_serializable
from repro.paper.figures import FIGURE3_EXPECTED_ARCS


class TestFigure1:
    def test_transactions_match_paper(self, fig1):
        assert str(fig1.transactions[0]) == "T1 = r1[x] w1[x] w1[z] r1[y]"
        assert str(fig1.transactions[1]) == "T2 = r2[y] w2[y] r2[x]"
        assert str(fig1.transactions[2]) == "T3 = w3[x] w3[y] w3[z]"

    def test_atomicity_t1_t2_as_printed(self, fig1):
        # "Atomicity(T1, T2) is <[r1[x] w1[x]], [w1[z] r1[y]]>".
        view = fig1.spec.atomicity(1, 2)
        t1 = fig1.spec.transactions[1]
        assert view.render(t1) == "r1[x] w1[x] | w1[z] r1[y]"

    def test_sra_is_not_serial_but_relatively_atomic(self, fig1):
        # "even though Sra is not a serial schedule, it is correct with
        # respect to the relative atomicity specifications".
        sra = fig1.schedule("Sra")
        assert not sra.is_serial
        assert is_relatively_atomic(sra, fig1.spec)

    def test_sra_is_not_conflict_serializable(self, fig1):
        # The interleaving the paper celebrates is impossible under the
        # traditional model.
        assert not is_conflict_serializable(fig1.schedule("Sra"))

    def test_srs_is_relatively_serial(self, fig1):
        # "Hence, Srs is relatively serial."
        assert is_relatively_serial(fig1.schedule("Srs"), fig1.spec)

    def test_srs_interleavings_are_dependency_free(self, fig1):
        # "r2[y] is interleaved with AtomicUnit(1, T1, T2) and r2[y] does
        # not depend on r1[x] and w1[x] does not depend on r2[y]."
        from repro.core.dependency import DependencyRelation

        srs = fig1.schedule("Srs")
        dep = DependencyRelation(srs)
        t1 = fig1.spec.transactions[1]
        t2 = fig1.spec.transactions[2]
        r2y, w1x, r1x = t2[0], t1[1], t1[0]
        assert not dep.depends_on(r2y, r1x)
        assert not dep.depends_on(w1x, r2y)

    def test_s2_is_not_relatively_serial_for_the_paper_reason(self, fig1):
        # "S2 is not relatively serial since w1[x] is interleaved with
        # AtomicUnit(2, T2, T1) and r2[x] depends on w1[x]."
        from repro.core.checkers import relative_serial_violations

        s2 = fig1.schedule("S2")
        assert not is_relatively_serial(s2, fig1.spec)
        violations = {
            (op.label, unit.tx, unit.ordinal, unit_op.label)
            for op, unit, unit_op in relative_serial_violations(
                s2, fig1.spec
            )
        }
        assert ("w1[x]", 2, 2, "r2[x]") in violations

    def test_s2_is_relatively_serializable_via_srs(self, fig1):
        # "S2 is relatively serializable since it is conflict equivalent
        # to the relatively serial schedule Srs."
        assert is_relatively_serializable(fig1.schedule("S2"), fig1.spec)
        assert conflict_equivalent(fig1.schedule("S2"), fig1.schedule("Srs"))


class TestFigure2:
    def test_s1_is_not_relatively_serial(self, fig2):
        # "the user's relative atomicity specifications does not allow T2
        # in the atomic unit [w1[x] r1[z]], S1 is not a correct schedule."
        assert not is_relatively_serial(fig2.schedule("S1"), fig2.spec)

    def test_w2y_reaches_r1z_only_transitively(self, fig2):
        # "w2[y] does not conflict with either w1[x] or r1[z], but r1[z]
        # is affected by w2[y]."
        from repro.core.dependency import DependencyRelation

        s1 = fig2.schedule("S1")
        w2y = s1[1]
        w1x = s1[0]
        r1z = s1[4]
        assert not w2y.conflicts_with(w1x)
        assert not w2y.conflicts_with(r1z)
        assert DependencyRelation(s1).depends_on(r1z, w2y)
        assert not DependencyRelation(s1, transitive=False).depends_on(
            r1z, w2y
        )

    def test_direct_conflicts_would_wrongly_accept_s1(self, fig2):
        # "If the depends on relation is based only on direct conflicts
        # then the schedule S1 will be considered as a correct schedule."
        from repro.core.dependency import DependencyRelation

        direct = DependencyRelation(fig2.schedule("S1"), transitive=False)
        assert is_relatively_serial(fig2.schedule("S1"), fig2.spec, direct)


class TestFigure3:
    def test_rsg_reproduces_the_drawn_graph(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        got = {
            (a.label, b.label): frozenset(kind.value for kind in labels)
            for a, b, labels in rsg.graph.labelled_edges()
        }
        assert got == FIGURE3_EXPECTED_ARCS

    def test_the_two_arcs_the_text_derives(self, fig3):
        # "since w1[x] r1[z] is atomic with respect to T2 and since r2[x]
        # depends on w1[x], RSG(S2) contains the F-arc from r1[z] to
        # r2[x].  Since r3[z] r3[y] is atomic relative to T2 and r3[y]
        # depends on w2[y], RSG(S2) contains the B-arc from w2[y] to
        # r3[z]."
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        t1 = fig3.spec.transactions[1]
        t2 = fig3.spec.transactions[2]
        t3 = fig3.spec.transactions[3]
        assert ArcKind.PUSH_FORWARD in rsg.arc_kinds(t1[1], t2[0])
        assert ArcKind.PULL_BACKWARD in rsg.arc_kinds(t2[1], t3[0])


class TestFigure4:
    def test_s_is_relatively_serial(self, fig4):
        # "The schedule S given in Figure 4 is a relatively serial
        # schedule."
        assert is_relatively_serial(fig4.schedule("S"), fig4.spec)

    def test_s_is_not_relatively_consistent(self, fig4):
        # "However, S is not conflict equivalent to any relatively atomic
        # schedule."
        assert not is_relatively_consistent(fig4.schedule("S"), fig4.spec)

    def test_s_witnesses_the_proper_containment(self, fig4):
        # "the set of relatively serializable schedules properly contains
        # the set of relatively consistent schedules" (Figure 5).
        assert is_relatively_serializable(fig4.schedule("S"), fig4.spec)

    def test_t1_cannot_leave_t3s_atomic_unit(self, fig4):
        # The paper's argument: "operations w1[x] and w1[y] cannot be
        # rearranged ... since T4 and T2 do not permit T1 in their
        # respective atomic units."  Concretely: in every conflict-
        # equivalent schedule that keeps T1 outside the units of T4 and
        # T2 (as relative atomicity demands), T1 is trapped strictly
        # inside T3's unit — so no equivalent schedule is relatively
        # atomic.
        from repro.core.brute import conflict_equivalent_schedules

        s = fig4.schedule("S")
        spec = fig4.spec
        t1, t2, t3, t4 = (spec.transactions[i] for i in (1, 2, 3, 4))
        saw_containment = False
        for candidate in conflict_equivalent_schedules(s):
            t1_positions = [candidate.position(op) for op in t1]
            t4_span = (candidate.position(t4[0]), candidate.position(t4[1]))
            t2_span = (candidate.position(t2[0]), candidate.position(t2[1]))
            outside_t4 = all(
                not (t4_span[0] < p < t4_span[1]) for p in t1_positions
            )
            outside_t2 = all(
                not (t2_span[0] < p < t2_span[1]) for p in t1_positions
            )
            if not (outside_t4 and outside_t2):
                continue  # already violates relative atomicity
            w3t = candidate.position(t3[0])
            w3z = candidate.position(t3[1])
            assert all(w3t < p < w3z for p in t1_positions)
            saw_containment = True
        assert saw_containment


class TestFigure5:
    def test_hierarchy_on_figure1_census(self, fig1):
        # Exhaustive census over all 4200 interleavings of Figure 1's
        # transactions: the Figure 5 containments hold, and relative
        # serializability is strictly the largest class.
        from repro.analysis.classes import census_exhaustive

        result = census_exhaustive(
            fig1.transactions, fig1.spec, consistency_budget=50_000
        )
        assert result.total == 4200
        assert result.undecided_consistent == 0
        assert result.serial <= result.relatively_atomic
        assert result.relatively_atomic <= result.relatively_serial
        assert result.relatively_serial <= result.relatively_serializable
        assert (
            result.relatively_atomic <= result.relatively_consistent
        )
        assert (
            result.relatively_consistent <= result.relatively_serializable
        )
        assert (
            result.conflict_serializable < result.relatively_serializable
        )
