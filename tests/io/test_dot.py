"""Unit tests for DOT export."""

from pathlib import Path

from repro.core.dependency import DependencyRelation
from repro.core.rsg import RelativeSerializationGraph
from repro.graphs.digraph import DiGraph
from repro.io.dot import (
    dependency_to_dot,
    digraph_to_dot,
    rsg_to_dot,
    witness_to_dot,
)
from repro.io.notation import parse_problem
from repro.obs.explain import (
    RejectionWitness,
    WitnessStep,
    explain_schedule,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


class TestDigraphToDot:
    def test_structure(self):
        g = DiGraph()
        g.add_edge("a", "b", label="L")
        g.add_node("c")
        dot = digraph_to_dot(g, name="Test")
        assert dot.startswith("digraph Test {")
        assert dot.rstrip().endswith("}")
        assert '"a" -> "b"' in dot
        assert 'label="L"' in dot
        assert '"c"' in dot

    def test_quotes_are_escaped(self):
        g = DiGraph()
        g.add_edge('a"x', "b")
        dot = digraph_to_dot(g)
        assert '"a\\"x"' in dot


class TestRsgToDot:
    def test_clusters_and_arc_kinds(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        dot = rsg_to_dot(rsg)
        for tx_id in (1, 2, 3):
            assert f"subgraph cluster_T{tx_id}" in dot
        # Every operation appears as a node.
        for op in fig3.schedule("S2"):
            assert op.label in dot
        # Arc-kind colours are applied.
        assert "color=red" in dot  # B-arcs exist in Figure 3
        assert "color=forestgreen" in dot  # F-arcs too

    def test_edge_count_matches_graph(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        dot = rsg_to_dot(rsg)
        arrow_lines = [
            line for line in dot.splitlines() if "->" in line
        ]
        assert len(arrow_lines) == rsg.graph.edge_count


class TestDependencyToDot:
    def test_renders_all_pairs(self, fig2):
        dep = DependencyRelation(fig2.schedule("S1"))
        dot = dependency_to_dot(dep)
        arrow_lines = [line for line in dot.splitlines() if "->" in line]
        assert len(arrow_lines) == len(list(dep.pairs()))


class TestWitnessToDot:
    def test_arc_styling_per_kind(self):
        witness = RejectionWitness(
            (
                WitnessStep("a", "b", "I"),
                WitnessStep("b", "c", "D"),
                WitnessStep("c", "d", "F"),
                WitnessStep("d", "a", "DB"),
            )
        )
        dot = witness_to_dot(witness)
        lines = {
            line.split(" -> ")[0].strip(): line
            for line in dot.splitlines()
            if "->" in line
        }
        # I solid, D dashed, unit arcs (F/B) bold, combinations compose.
        assert 'style="solid"' in lines['"a"']
        assert 'style="dashed"' in lines['"b"']
        assert 'style="bold"' in lines['"c"']
        assert 'style="dashed,bold"' in lines['"d"']
        # Colour follows the first kind in I/D/F/B order.
        assert "color=black" in lines['"a"']
        assert "color=blue" in lines['"b"']
        assert "color=forestgreen" in lines['"c"']
        assert "color=blue" in lines['"d"']

    def test_figure4_rejection_matches_the_golden_rendering(self):
        problem = parse_problem((EXAMPLES / "figure4.txt").read_text())
        explanation = explain_schedule(problem.schedule("R"), problem.spec)
        assert witness_to_dot(explanation.witness) == (
            "digraph WITNESS {\n"
            "  rankdir=LR;\n"
            "  node [shape=box];\n"
            '  "w1[x]" [label="w1[x]"];\n'
            '  "w4[t]" [label="w4[t]"];\n'
            '  "w3[z]" [label="w3[z]"];\n'
            '  "w2[y]" [label="w2[y]"];\n'
            '  "w1[x]" -> "w4[t]" [label="D", style="dashed", '
            "color=blue];\n"
            '  "w4[t]" -> "w3[z]" [label="DFB", style="dashed,bold", '
            "color=blue];\n"
            '  "w3[z]" -> "w2[y]" [label="DF", style="dashed,bold", '
            "color=blue];\n"
            '  "w2[y]" -> "w1[x]" [label="B", style="bold", '
            "color=red];\n"
            "}\n"
        )
