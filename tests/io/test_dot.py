"""Unit tests for DOT export."""

from repro.core.dependency import DependencyRelation
from repro.core.rsg import RelativeSerializationGraph
from repro.graphs.digraph import DiGraph
from repro.io.dot import dependency_to_dot, digraph_to_dot, rsg_to_dot


class TestDigraphToDot:
    def test_structure(self):
        g = DiGraph()
        g.add_edge("a", "b", label="L")
        g.add_node("c")
        dot = digraph_to_dot(g, name="Test")
        assert dot.startswith("digraph Test {")
        assert dot.rstrip().endswith("}")
        assert '"a" -> "b"' in dot
        assert 'label="L"' in dot
        assert '"c"' in dot

    def test_quotes_are_escaped(self):
        g = DiGraph()
        g.add_edge('a"x', "b")
        dot = digraph_to_dot(g)
        assert '"a\\"x"' in dot


class TestRsgToDot:
    def test_clusters_and_arc_kinds(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        dot = rsg_to_dot(rsg)
        for tx_id in (1, 2, 3):
            assert f"subgraph cluster_T{tx_id}" in dot
        # Every operation appears as a node.
        for op in fig3.schedule("S2"):
            assert op.label in dot
        # Arc-kind colours are applied.
        assert "color=red" in dot  # B-arcs exist in Figure 3
        assert "color=forestgreen" in dot  # F-arcs too

    def test_edge_count_matches_graph(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        dot = rsg_to_dot(rsg)
        arrow_lines = [
            line for line in dot.splitlines() if "->" in line
        ]
        assert len(arrow_lines) == rsg.graph.edge_count


class TestDependencyToDot:
    def test_renders_all_pairs(self, fig2):
        dep = DependencyRelation(fig2.schedule("S1"))
        dot = dependency_to_dot(dep)
        arrow_lines = [line for line in dot.splitlines() if "->" in line]
        assert len(arrow_lines) == len(list(dep.pairs()))
