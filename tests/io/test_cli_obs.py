"""CLI tests for the observability surface: trace, explain, --trace /
--metrics flags, and the checked-in explain goldens."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"
GOLDEN = REPO / "tests" / "golden"


@pytest.fixture()
def fig2_file():
    return str(EXAMPLES / "figure2.txt")


@pytest.fixture()
def fig4_file():
    return str(EXAMPLES / "figure4.txt")


class TestTraceCommand:
    def test_jsonl_to_stdout(self, fig2_file, capsys):
        assert main(["trace", fig2_file]) == 0
        lines = capsys.readouterr().out.splitlines()
        events = [json.loads(line) for line in lines]
        assert [event["seq"] for event in events] == list(
            range(len(events))
        )
        kinds = {event["kind"] for event in events}
        assert {"op-requested", "grant", "commit"} <= kinds

    def test_chrome_format_is_valid_schema(self, fig2_file, capsys):
        assert main(["trace", fig2_file, "--format", "chrome"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["displayTimeUnit"] == "ms"
        for entry in payload["traceEvents"]:
            assert entry["ph"] == "i"
            assert isinstance(entry["ts"], int)
            assert isinstance(entry["tid"], int)
            assert entry["name"]
            assert "args" in entry

    def test_output_file(self, fig2_file, tmp_path):
        target = tmp_path / "trace.jsonl"
        assert main(["trace", fig2_file, "-o", str(target)]) == 0
        assert target.read_text().startswith('{"seq":0,')

    def test_trace_is_deterministic(self, fig2_file, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["trace", fig2_file, "-o", str(first)])
        main(["trace", fig2_file, "-o", str(second)])
        assert first.read_bytes() == second.read_bytes()


class TestExplainCommand:
    def test_admissible_schedule_prints_serial_witness(
        self, fig2_file, capsys
    ):
        assert main(["explain", fig2_file, "--schedule", "S1"]) == 0
        out = capsys.readouterr().out
        assert "relatively serializable (RSG acyclic)" in out
        assert "w2[y] w1[x] r3[y] w3[z] r1[z]" in out

    def test_rejected_schedule_prints_the_cycle(self, fig4_file, capsys):
        assert main(["explain", fig4_file, "--schedule", "R"]) == 0
        out = capsys.readouterr().out
        assert "NOT relatively serializable" in out
        assert "w1[x] --D--> w4[t]" in out
        assert "w2[y] --B--> w1[x]" in out

    def test_json_matches_the_goldens(self, fig2_file, fig4_file, capsys):
        for file, golden in (
            (fig2_file, "figure2_witness.json"),
            (fig4_file, "figure4_witness.json"),
        ):
            schedule = "S1" if "figure2" in file else "R"
            assert main(["explain", file, "--schedule", schedule,
                         "--json"]) == 0
            out = capsys.readouterr().out
            assert out == (GOLDEN / golden).read_text()

    def test_dot_renders_the_witness(self, fig4_file, capsys):
        assert main(["explain", fig4_file, "--schedule", "R", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph WITNESS {")
        assert 'label="DFB"' in out

    def test_dot_of_admissible_schedule_notes_no_witness(
        self, fig2_file, capsys
    ):
        assert main(["explain", fig2_file, "--schedule", "S1",
                     "--dot"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "no witness cycle" in captured.err

    def test_unknown_schedule_is_an_error(self, fig2_file, capsys):
        assert main(["explain", fig2_file, "--schedule", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulateFlags:
    def test_trace_and_metrics_files(self, fig2_file, tmp_path, capsys):
        trace, metrics = tmp_path / "t.jsonl", tmp_path / "m.json"
        code = main([
            "simulate", fig2_file,
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        capsys.readouterr()
        assert code == 0
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert events
        report = json.loads(metrics.read_text())
        grants = [
            value
            for name, value in report["counters"].items()
            if name.startswith("sim.grants")
        ]
        assert sum(grants) > 0


class TestCensusFlags:
    def test_metrics_file_carries_the_class_counters(
        self, fig2_file, tmp_path, capsys
    ):
        metrics = tmp_path / "census.json"
        code = main(["census", fig2_file, "--metrics", str(metrics)])
        capsys.readouterr()
        assert code == 0
        report = json.loads(metrics.read_text())
        assert report["gauges"]["census.total"] == 30
        classes = {
            name: value
            for name, value in report["counters"].items()
            if name.startswith("census.schedules")
        }
        assert classes["census.schedules{cls=relatively serializable}"] == 30


class TestFaultsFlags:
    def test_trace_and_metrics_deterministic_across_jobs(
        self, tmp_path, capsys
    ):
        outputs = {}
        for jobs in ("1", "2"):
            trace = tmp_path / f"trace_{jobs}.jsonl"
            metrics = tmp_path / f"metrics_{jobs}.json"
            code = main([
                "faults", "--seed", "7", "--runs", "6", "--jobs", jobs,
                "--trace", str(trace), "--metrics", str(metrics),
            ])
            capsys.readouterr()
            assert code == 0
            outputs[jobs] = (trace.read_bytes(), metrics.read_bytes())
        assert outputs["1"] == outputs["2"]
        header = json.loads(outputs["1"][0].splitlines()[0])
        assert header["run"] == 0 and "seed" in header
