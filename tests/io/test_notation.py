"""Unit tests for the problem-file format."""

import pytest

from repro.errors import NotationError
from repro.io.notation import Problem, parse_problem, render_problem

FIGURE1_TEXT = """
# Figure 1 of the paper
T1: r[x] w[x] w[z] r[y]
T2: r[y] w[y] r[x]
T3: w[x] w[y] w[z]

atomicity T1/T2: r[x] w[x] | w[z] r[y]
atomicity T1/T3: r[x] w[x] | w[z] | r[y]
atomicity T2/T1: r[y] | w[y] r[x]
atomicity T2/T3: r[y] w[y] | r[x]
atomicity T3/T1: w[x] w[y] | w[z]
atomicity T3/T2: w[x] w[y] | w[z]

schedule Sra: r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]
"""


class TestParse:
    def test_parses_figure1(self, fig1):
        problem = parse_problem(FIGURE1_TEXT)
        assert len(problem.transactions) == 3
        assert problem.transactions[0] == fig1.transactions[0]
        for pair in fig1.spec.pairs():
            assert problem.spec.atomicity(*pair) == fig1.spec.atomicity(*pair)
        assert problem.schedule("Sra") == fig1.schedule("Sra")

    def test_comments_and_blank_lines_ignored(self):
        problem = parse_problem("# hi\n\nT1: r[x]\n")
        assert len(problem.transactions) == 1

    def test_missing_atomicity_defaults_to_absolute(self):
        problem = parse_problem("T1: r[x] w[x]\nT2: w[x]\n")
        assert problem.spec.is_absolute

    def test_unparseable_line_raises_with_line_number(self):
        with pytest.raises(NotationError, match="line 2"):
            parse_problem("T1: r[x]\nnonsense here\n")

    def test_no_transactions_raises(self):
        with pytest.raises(NotationError):
            parse_problem("# empty\n")

    def test_duplicate_schedule_name_raises(self):
        text = "T1: r[x]\nschedule a: r1[x]\nschedule a: r1[x]\n"
        with pytest.raises(NotationError, match="duplicate"):
            parse_problem(text)

    def test_bad_schedule_raises(self):
        with pytest.raises(NotationError, match="invalid schedule"):
            parse_problem("T1: r[x]\nschedule s: w1[x]\n")

    def test_bad_atomicity_raises(self):
        with pytest.raises(NotationError, match="invalid atomicity"):
            parse_problem("T1: r[x] w[x]\nT2: w[y]\natomicity T1/T2: w[x] r[x]\n")

    def test_unknown_schedule_lookup(self):
        problem = parse_problem("T1: r[x]\n")
        with pytest.raises(NotationError):
            problem.schedule("nope")


class TestRender:
    def test_round_trip(self, fig1):
        problem = Problem(
            list(fig1.transactions), fig1.spec, dict(fig1.schedules)
        )
        text = render_problem(problem)
        back = parse_problem(text)
        assert back.transactions == problem.transactions
        for pair in fig1.spec.pairs():
            assert back.spec.atomicity(*pair) == fig1.spec.atomicity(*pair)
        assert back.schedules == problem.schedules

    def test_absolute_views_omitted(self):
        problem = parse_problem("T1: r[x] w[x]\nT2: w[x]\n")
        assert "atomicity" not in render_problem(problem)
