"""``python -m repro`` dispatches to the CLI."""

import subprocess
import sys


class TestMainModule:
    def test_demo_runs_via_dash_m(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "demo", "--figure", "1"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "Figure 1" in result.stdout

    def test_missing_subcommand_exits_nonzero(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode != 0
