"""Unit tests for JSON (de)serialization."""

import json

import pytest

from repro.errors import NotationError
from repro.io.jsonio import (
    problem_from_json,
    problem_to_json,
    schedule_from_json,
    schedule_to_json,
    spec_from_json,
    spec_to_json,
    transaction_from_json,
    transaction_to_json,
)
from repro.io.notation import Problem


class TestTransactionJson:
    def test_round_trip(self, fig1):
        for transaction in fig1.transactions:
            data = transaction_to_json(transaction)
            assert transaction_from_json(data) == transaction

    def test_shape_is_plain_json(self, fig1):
        data = transaction_to_json(fig1.transactions[0])
        json.dumps(data)  # must not raise
        assert data == {"id": 1, "ops": ["r[x]", "w[x]", "w[z]", "r[y]"]}

    def test_missing_key_raises(self):
        with pytest.raises(NotationError):
            transaction_from_json({"ops": ["r[x]"]})


class TestSpecJson:
    def test_round_trip(self, fig1):
        rows = spec_to_json(fig1.spec)
        back = spec_from_json(list(fig1.transactions), rows)
        for pair in fig1.spec.pairs():
            assert back.atomicity(*pair) == fig1.spec.atomicity(*pair)

    def test_absolute_views_omitted(self, fig1):
        rows = spec_to_json(fig1.spec)
        # Figure 1 declares all six views, none absolute.
        assert len(rows) == 6
        from repro.specs.builders import absolute_spec

        assert spec_to_json(absolute_spec(list(fig1.transactions))) == []

    def test_missing_key_raises(self, fig1):
        with pytest.raises(NotationError):
            spec_from_json(list(fig1.transactions), [{"tx": 1}])


class TestScheduleJson:
    def test_round_trip(self, fig1):
        labels = schedule_to_json(fig1.schedule("Sra"))
        back = schedule_from_json(list(fig1.transactions), labels)
        assert back == fig1.schedule("Sra")

    def test_labels_in_schedule_order(self, fig1):
        labels = schedule_to_json(fig1.schedule("Sra"))
        assert labels[0] == "r2[y]"
        assert labels[-1] == "w3[z]"


class TestProblemJson:
    def test_round_trip_through_json_text(self, fig1):
        problem = Problem(
            list(fig1.transactions), fig1.spec, dict(fig1.schedules)
        )
        text = json.dumps(problem_to_json(problem))
        back = problem_from_json(json.loads(text))
        assert back.transactions == problem.transactions
        assert back.schedules == problem.schedules
        for pair in fig1.spec.pairs():
            assert back.spec.atomicity(*pair) == fig1.spec.atomicity(*pair)

    def test_minimal_problem(self):
        back = problem_from_json(
            {"transactions": [{"id": 1, "ops": ["r[x]"]}]}
        )
        assert len(back.transactions) == 1
        assert back.spec.is_absolute
        assert back.schedules == {}

    def test_missing_transactions_raises(self):
        with pytest.raises(NotationError):
            problem_from_json({})
