"""Integration tests for the CLI simulate subcommand."""

import pytest

from repro.cli import main

PROBLEM = """
T1: r[x] w[x] w[z] r[y]
T2: r[y] w[y] r[x]
T3: w[x] w[y] w[z]

atomicity T1/T2: r[x] w[x] | w[z] r[y]
atomicity T1/T3: r[x] w[x] | w[z] | r[y]
atomicity T2/T1: r[y] | w[y] r[x]
atomicity T2/T3: r[y] w[y] | r[x]
atomicity T3/T1: w[x] w[y] | w[z]
atomicity T3/T2: w[x] w[y] | w[z]
"""


@pytest.fixture()
def problem_file(tmp_path):
    path = tmp_path / "fig1.txt"
    path.write_text(PROBLEM)
    return path


class TestSimulate:
    @pytest.mark.parametrize(
        "protocol", ["2pl", "sgt", "altruistic", "rel-locking", "rsgt"]
    )
    def test_each_protocol_runs_and_verifies(
        self, problem_file, capsys, protocol
    ):
        code = main(
            ["simulate", str(problem_file), "--protocol", protocol]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"protocol: " in out
        assert "committed history:" in out
        assert "makespan" in out
        assert ": yes" in out  # offline verification verdict

    def test_reports_per_transaction_metrics(self, problem_file, capsys):
        code = main(["simulate", str(problem_file), "--protocol", "rsgt"])
        out = capsys.readouterr().out
        assert code == 0
        for column in ("tx", "arrival", "commit", "response", "restarts"):
            assert column in out

    def test_reports_recovery_profile(self, problem_file, capsys):
        code = main(["simulate", str(problem_file), "--protocol", "2pl"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovery:" in out
        assert "strict=" in out

    def test_default_protocol_is_rsgt(self, problem_file, capsys):
        code = main(["simulate", str(problem_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "protocol: rsgt" in out

    def test_unknown_protocol_rejected(self, problem_file):
        with pytest.raises(SystemExit):
            main(["simulate", str(problem_file), "--protocol", "nope"])

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "missing.txt"
        with pytest.raises(FileNotFoundError):
            main(["simulate", str(path)])


class TestInfer:
    def test_recovers_paper_style_cuts_from_sra(self, tmp_path, capsys):
        path = tmp_path / "sra.txt"
        path.write_text(
            "T1: r[x] w[x] w[z] r[y]\n"
            "T2: r[y] w[y] r[x]\n"
            "T3: w[x] w[y] w[z]\n"
            "schedule Sra: r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] "
            "w3[y] r1[y] w3[z]\n"
        )
        code = main(["infer", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        # The cuts the paper's Figure 1 spec declares and Sra exercises.
        assert "atomicity T1/T2: r1[x] w1[x] | w1[z] r1[y]" in out
        assert "atomicity T2/T1: r2[y] | w2[y] r2[x]" in out
        assert "atomicity T3/T1: w3[x] w3[y] | w3[z]" in out

    def test_output_round_trips_into_a_working_problem(
        self, tmp_path, capsys
    ):
        path = tmp_path / "sra.txt"
        body = (
            "T1: r[x] w[x] w[z] r[y]\n"
            "T2: r[y] w[y] r[x]\n"
            "T3: w[x] w[y] w[z]\n"
        )
        sched = (
            "schedule Sra: r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] "
            "w3[y] r1[y] w3[z]\n"
        )
        path.write_text(body + sched)
        main(["infer", str(path)])
        inferred = capsys.readouterr().out
        atomicity_lines = "\n".join(
            line for line in inferred.splitlines()
            if line.startswith("atomicity")
        )
        merged = tmp_path / "merged.txt"
        merged.write_text(body + atomicity_lines + "\n" + sched)
        code = main(["classify", str(merged), "--schedule", "Sra"])
        out = capsys.readouterr().out
        assert code == 0
        serial_lines = [
            line for line in out.splitlines()
            if line.startswith("relatively serial ")
        ]
        assert serial_lines and serial_lines[0].rstrip().endswith("yes")

    def test_serial_only_needs_nothing(self, tmp_path, capsys):
        path = tmp_path / "serial.txt"
        path.write_text(
            "T1: r[x] w[x]\nT2: w[x]\n"
            "schedule s: r1[x] w1[x] w2[x]\n"
        )
        code = main(["infer", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "absolute atomicity already suffices" in out

    def test_no_schedules_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("T1: r[x]\n")
        code = main(["infer", str(path)])
        assert code == 2
        assert "no schedules" in capsys.readouterr().err


class TestChop:
    def test_chops_the_classic_instance(self, tmp_path, capsys):
        path = tmp_path / "chop.txt"
        path.write_text("T1: w[x] w[y]\nT2: r[x] w[x]\nT3: r[y] w[y]\n")
        code = main(["chop", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 pieces" in out
        assert "atomicity T1/T2: w1[x] | w1[y]" in out

    def test_reports_unchoppable_sets(self, tmp_path, capsys):
        path = tmp_path / "nochop.txt"
        path.write_text(
            "T1: w[x] w[y]\nT2: r[x] w[x]\nT3: r[y] w[y]\nT4: r[x] r[y]\n"
        )
        code = main(["chop", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no transaction can be chopped" in out
