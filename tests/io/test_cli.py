"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io.notation import Problem, render_problem
from repro.paper import figure1

FIGURE1_FILE = render_problem(
    Problem(
        list(figure1().transactions),
        figure1().spec,
        dict(figure1().schedules),
    )
)


@pytest.fixture()
def problem_file(tmp_path):
    path = tmp_path / "figure1.txt"
    path.write_text(FIGURE1_FILE)
    return path


class TestClassify:
    def test_classifies_named_schedule(self, problem_file, capsys):
        code = main(["classify", str(problem_file), "--schedule", "Sra"])
        out = capsys.readouterr().out
        assert code == 0
        assert "schedule Sra" in out
        assert "relatively atomic         yes" in out

    def test_classifies_all_schedules_by_default(self, problem_file, capsys):
        code = main(["classify", str(problem_file)])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("Sra", "Srs", "S2"):
            assert f"schedule {name}" in out

    def test_unknown_schedule_is_an_error(self, problem_file, capsys):
        code = main(["classify", str(problem_file), "--schedule", "nope"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestRsg:
    def test_reports_arc_census_and_acyclicity(self, problem_file, capsys):
        code = main(["rsg", str(problem_file), "--schedule", "S2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "vertices: 10" in out
        assert "acyclic: yes" in out

    def test_dot_output(self, problem_file, capsys):
        code = main(["rsg", str(problem_file), "--schedule", "S2", "--dot"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph RSG {")

    def test_cyclic_schedule_reports_cycle(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text(
            "T1: r[x] w[x]\nT2: r[x] w[x]\n"
            "schedule bad: r1[x] r2[x] w1[x] w2[x]\n"
        )
        code = main(["rsg", str(path), "--schedule", "bad"])
        out = capsys.readouterr().out
        assert code == 0
        assert "acyclic: no" in out
        assert "cycle:" in out


class TestWitness:
    def test_prints_relatively_serial_equivalent(self, problem_file, capsys):
        code = main(["witness", str(problem_file), "--schedule", "S2"])
        out = capsys.readouterr().out.strip()
        assert code == 0
        # The witness is exactly the paper's Srs.
        assert out == str(figure1().schedule("Srs"))

    def test_cyclic_input_fails_with_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text(
            "T1: r[x] w[x]\nT2: r[x] w[x]\n"
            "schedule bad: r1[x] r2[x] w1[x] w2[x]\n"
        )
        code = main(["witness", str(path), "--schedule", "bad"])
        assert code == 1
        assert "not relatively serializable" in capsys.readouterr().err


class TestDemo:
    def test_single_figure(self, capsys):
        code = main(["demo", "--figure", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 4" in out
        assert "relatively serializable   yes" in out

    def test_all_figures(self, capsys):
        code = main(["demo"])
        out = capsys.readouterr().out
        assert code == 0
        for number in (1, 2, 3, 4):
            assert f"Figure {number}" in out


class TestCensus:
    def test_census_over_small_problem(self, tmp_path, capsys):
        path = tmp_path / "tiny.txt"
        path.write_text("T1: r[x] w[x]\nT2: w[x]\n")
        code = main(["census", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "census over 3 interleavings" in out
        assert "relatively serializable" in out

    def test_limit_guard(self, problem_file, capsys):
        code = main(["census", str(problem_file), "--limit", "10"])
        assert code == 2
        assert "exceed" in capsys.readouterr().err
