"""Hypothesis round-trip and robustness tests for the textual formats."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import read, write
from repro.core.transactions import Transaction
from repro.errors import ReproError
from repro.io.jsonio import problem_from_json, problem_to_json
from repro.io.notation import Problem, parse_problem, render_problem
from repro.workloads.random_schedules import random_interleaving

OBJECTS = ("x", "y", "z", "acct0", "part_1")


@st.composite
def problems(draw):
    n = draw(st.integers(1, 3))
    transactions = []
    for tx_id in range(1, n + 1):
        length = draw(st.integers(1, 4))
        ops = []
        for _ in range(length):
            obj = draw(st.sampled_from(OBJECTS))
            ops.append(write(obj) if draw(st.booleans()) else read(obj))
        transactions.append(Transaction(tx_id, ops))
    views = {}
    for tx in transactions:
        for observer in transactions:
            if tx.tx_id == observer.tx_id:
                continue
            cuts = draw(
                st.sets(st.integers(1, max(1, len(tx) - 1)), max_size=4)
            )
            views[(tx.tx_id, observer.tx_id)] = {
                cut for cut in cuts if cut <= len(tx) - 1
            }
    spec = RelativeAtomicitySpec(transactions, views)
    schedules = {}
    if draw(st.booleans()) and n >= 1:
        seed = draw(st.integers(0, 10_000))
        schedules["s0"] = random_interleaving(transactions, seed=seed)
    return Problem(transactions, spec, schedules)


@given(problems())
@settings(max_examples=60, deadline=None)
def test_notation_round_trip(problem):
    text = render_problem(problem)
    back = parse_problem(text)
    assert back.transactions == problem.transactions
    assert back.schedules == problem.schedules
    for pair in problem.spec.pairs():
        assert back.spec.atomicity(*pair) == problem.spec.atomicity(*pair)


@given(problems())
@settings(max_examples=60, deadline=None)
def test_json_round_trip(problem):
    import json

    payload = json.loads(json.dumps(problem_to_json(problem)))
    back = problem_from_json(payload)
    assert back.transactions == problem.transactions
    assert back.schedules == problem.schedules
    for pair in problem.spec.pairs():
        assert back.spec.atomicity(*pair) == problem.spec.atomicity(*pair)


@given(st.text(max_size=200))
@settings(max_examples=150, deadline=None)
def test_parser_never_crashes_unexpectedly(text):
    # Arbitrary text either parses or raises the library's own error
    # type — never an internal exception.
    try:
        parse_problem(text)
    except ReproError:
        pass
