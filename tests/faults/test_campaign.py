"""Campaign-level properties: the certified-survivor invariants.

The headline property test drives 200 seeded fault campaigns (50 per
protocol across RSGT, relative locking, strict 2PL, and altruistic
locking) and asserts, for every run:

* the committed projection of the emitted history certifies relatively
  serializable (RSG acyclic under the survivor-restricted spec), and
* the recovered store state equals a fault-free execution of exactly
  the committed transactions (projection replay and RSG witness).

Campaign reports must also be byte-deterministic: same seed, same
bytes, at any worker count.
"""

import json

import pytest

from repro.core.transactions import Transaction
from repro.errors import FaultError
from repro.faults import (
    CampaignConfig,
    FaultEvent,
    FaultKind,
    FaultPlan,
    run_campaign,
    run_faulty,
)

PROTOCOLS = ("rsgt", "rel-locking", "2pl", "altruistic")


class TestCertifiedSurvivors:
    """The tentpole invariant, 200 seeded campaigns strong."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_every_run_certifies_and_recovers(self, protocol):
        report = run_campaign(
            CampaignConfig(protocol=protocol, runs=50, seed=97)
        )
        bad = [r.index for r in report.records if not r.ok]
        assert not bad, (
            f"{protocol}: runs {bad} violated the certified-survivor "
            f"invariants"
        )
        # The campaign actually exercised faults, not a quiet baseline.
        totals = report.totals()
        assert totals["injected_kills"] > 0
        assert totals["injected_crashes"] > 0
        assert totals["restarts"] > 0
        assert totals["aborted"] > 0

    def test_survivors_match_committed_counts(self):
        report = run_campaign(CampaignConfig(protocol="rsgt", runs=10, seed=3))
        for record in report.records:
            assert len(record.survivors) == record.committed
            assert record.committed + record.aborted == 4


class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        config = CampaignConfig(protocol="rel-locking", runs=8, seed=21)
        assert (
            run_campaign(config).to_json() == run_campaign(config).to_json()
        )

    def test_jobs_do_not_change_the_report(self):
        config = CampaignConfig(protocol="rsgt", runs=8, seed=21)
        assert (
            run_campaign(config, jobs=1).to_json()
            == run_campaign(config, jobs=2).to_json()
        )

    def test_different_seeds_differ(self):
        a = run_campaign(CampaignConfig(protocol="rsgt", runs=5, seed=1))
        b = run_campaign(CampaignConfig(protocol="rsgt", runs=5, seed=2))
        assert a.to_json() != b.to_json()

    def test_report_json_is_loadable_and_sorted(self):
        report = run_campaign(CampaignConfig(protocol="2pl", runs=3, seed=5))
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert list(payload) == sorted(payload)
        assert len(payload["runs"]) == 3


class TestTraceDeterminism:
    """Traced campaigns must be byte-identical at any worker count."""

    def _traced(self, jobs):
        config = CampaignConfig(
            protocol="rsgt", runs=8, seed=21, trace=True
        )
        return run_campaign(config, jobs=jobs)

    def test_traces_byte_identical_across_jobs(self):
        serial, parallel = self._traced(1), self._traced(2)
        assert serial.trace_jsonl() == parallel.trace_jsonl()
        assert serial.metrics_json() == parallel.metrics_json()
        assert serial.to_json() == parallel.to_json()

    def test_trace_is_non_trivial_and_framed_per_run(self):
        report = self._traced(1)
        lines = report.trace_jsonl().splitlines()
        headers = [
            json.loads(line) for line in lines if '"run"' in line[:7]
        ]
        assert [header["run"] for header in headers] == list(range(8))
        events = [json.loads(line) for line in lines if '"seq"' in line]
        assert events, "traced campaign emitted no events"
        kinds = {event["kind"] for event in events}
        assert "op-requested" in kinds
        assert "fault-injected" in kinds

    def test_merged_metrics_cover_the_whole_campaign(self):
        report = self._traced(1)
        merged = json.loads(report.metrics_json())
        requests = sum(
            value
            for name, value in merged["counters"].items()
            if name.startswith("sim.requests")
        )
        assert requests > 0
        # Per-run payloads fold losslessly into the campaign report.
        per_run = sum(
            sum(
                value
                for name, value in record.metrics["counters"].items()
                if name.startswith("sim.requests")
            )
            for record in report.records
        )
        assert requests == per_run

    def test_untraced_campaign_keeps_records_empty(self):
        report = run_campaign(
            CampaignConfig(protocol="rsgt", runs=3, seed=21)
        )
        assert all(record.trace == "" for record in report.records)
        assert all(record.metrics == {} for record in report.records)


class TestRunFaulty:
    def _transactions(self):
        return [
            Transaction(1, ["w[x]", "w[y]"]),
            Transaction(2, ["r[x]", "w[y]"]),
        ]

    def test_empty_plan_everything_commits(self):
        run = run_faulty(self._transactions(), "2pl", FaultPlan())
        assert run.survivors == (1, 2)
        assert run.ok
        assert run.counters["kills"] == 0

    def test_killing_everyone_leaves_an_empty_certified_projection(self):
        plan = FaultPlan(
            [
                FaultEvent(FaultKind.KILL, 1, tx_id=1),
                FaultEvent(FaultKind.KILL, 1, tx_id=2),
            ]
        )
        run = run_faulty(
            self._transactions(),
            "2pl",
            plan,
            initial_state={"x": "init", "y": "init"},
        )
        assert run.survivors == ()
        assert run.ok
        # Nothing committed, so recovery restored the initial image.
        assert run.final_state == {"x": "init", "y": "init"}

    def test_killed_transaction_leaves_no_trace_in_state(self):
        plan = FaultPlan([FaultEvent(FaultKind.KILL, 2, tx_id=1)])
        run = run_faulty(
            self._transactions(),
            "2pl",
            plan,
            initial_state={"x": "init", "y": "init"},
        )
        assert run.survivors == (2,)
        assert run.ok
        assert run.final_state["y"] == "T2.1"
        assert run.final_state["x"] == "init"


class TestConfig:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(FaultError):
            CampaignConfig(protocol="optimistic")

    def test_zero_runs_rejected(self):
        with pytest.raises(FaultError):
            CampaignConfig(runs=0)

    def test_run_seeds_are_distinct(self):
        config = CampaignConfig(runs=100, seed=5)
        seeds = [config.run_seed(i) for i in range(100)]
        assert len(set(seeds)) == 100


class TestGoldenReport:
    """The CLI's seeded campaign must reproduce the checked-in report
    byte for byte (the CI smoke job diffs the same command's output)."""

    def test_cli_matches_golden_summary(self, capsys):
        from pathlib import Path

        from repro.cli import main

        golden = (
            Path(__file__).resolve().parent.parent
            / "golden"
            / "faults_seed7.json"
        )
        exit_code = main(
            [
                "faults",
                "--seed",
                "7",
                "--runs",
                "10",
                "--protocol",
                "rsgt",
                "--json",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert output == golden.read_text()
