"""Fault-plan construction, validation, and determinism."""

import pickle
import random

import pytest

from repro.core.transactions import Transaction
from repro.errors import FaultPlanError
from repro.faults import FaultEvent, FaultKind, FaultPlan, random_plan


def _transactions():
    return [
        Transaction(1, ["r[x]", "w[y]"]),
        Transaction(2, ["w[x]", "r[y]", "w[y]"]),
        Transaction(3, ["w[z]"]),
    ]


class TestFaultEvent:
    def test_per_tx_kinds_need_a_victim(self):
        for kind in (FaultKind.ABORT, FaultKind.STALL, FaultKind.KILL):
            with pytest.raises(FaultPlanError):
                FaultEvent(kind, 1)

    def test_crash_forbids_a_victim(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(FaultKind.CRASH, 1, tx_id=2)
        FaultEvent(FaultKind.CRASH, 1)  # fine without one

    def test_trigger_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(FaultKind.ABORT, 0, tx_id=1)

    def test_stall_duration_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(FaultKind.STALL, 1, tx_id=1, duration=0)

    def test_describe_mentions_the_victim(self):
        event = FaultEvent(FaultKind.KILL, 3, tx_id=7)
        assert "T7" in event.describe()
        assert "#3" in event.describe()


class TestFaultPlan:
    def test_canonical_order_makes_plans_equal(self):
        a = FaultEvent(FaultKind.ABORT, 2, tx_id=1)
        b = FaultEvent(FaultKind.KILL, 1, tx_id=2)
        assert FaultPlan([a, b]) == FaultPlan([b, a])
        assert hash(FaultPlan([a, b])) == hash(FaultPlan([b, a]))

    def test_selectors(self):
        plan = FaultPlan(
            [
                FaultEvent(FaultKind.ABORT, 2, tx_id=1),
                FaultEvent(FaultKind.STALL, 1, tx_id=1, duration=2),
                FaultEvent(FaultKind.CRASH, 4),
            ]
        )
        assert len(plan.for_tx(1)) == 2
        assert plan.for_tx(9) == ()
        assert len(plan.of_kind(FaultKind.CRASH)) == 1
        assert plan.counts() == {
            "abort": 1,
            "stall": 1,
            "kill": 0,
            "crash": 1,
        }

    def test_plans_pickle(self):
        plan = random_plan(
            _transactions(), 3, abort_rate=1.0, crash_rate=1.0
        )
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        txs = _transactions()
        kwargs = dict(
            abort_rate=0.5, stall_rate=0.5, kill_rate=0.5, crash_rate=0.5
        )
        assert random_plan(txs, 42, **kwargs) == random_plan(
            txs, 42, **kwargs
        )

    def test_different_seeds_eventually_differ(self):
        txs = _transactions()
        plans = {
            random_plan(txs, seed, abort_rate=0.5, stall_rate=0.5)
            for seed in range(20)
        }
        assert len(plans) > 1

    def test_rate_one_hits_every_transaction(self):
        txs = _transactions()
        plan = random_plan(txs, 0, abort_rate=1.0, kill_rate=1.0)
        for tx in txs:
            kinds = {e.kind for e in plan.for_tx(tx.tx_id)}
            assert kinds == {FaultKind.ABORT, FaultKind.KILL}

    def test_rate_zero_is_an_empty_plan(self):
        assert len(random_plan(_transactions(), 5)) == 0

    def test_rates_validated(self):
        with pytest.raises(FaultPlanError):
            random_plan(_transactions(), 0, abort_rate=1.5)
        with pytest.raises(FaultPlanError):
            random_plan(_transactions(), 0, crash_rate=-0.1)
        with pytest.raises(FaultPlanError):
            random_plan(_transactions(), 0, max_stall=0)

    def test_accepts_a_prng_instance(self):
        txs = _transactions()
        a = random_plan(txs, random.Random(9), abort_rate=1.0)
        b = random_plan(txs, random.Random(9), abort_rate=1.0)
        assert a == b
