"""Scripted behaviour tests for :class:`repro.faults.FaultInjector`."""

from repro.core.transactions import Transaction
from repro.engine.kvstore import KVStore
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.protocols import make_scheduler
from repro.protocols.base import Decision


def _wrap(plan, store=None):
    """A 2PL scheduler wrapped by the injector, two transactions admitted."""
    t1 = Transaction(1, ["w[x]", "w[y]"])
    t2 = Transaction(2, ["w[z]", "r[z]"])
    injector = FaultInjector(make_scheduler("2pl"), plan, store=store)
    injector.admit(t1)
    injector.admit(t2)
    return injector, t1, t2


class TestPassThrough:
    def test_empty_plan_is_transparent(self):
        injector, t1, _ = _wrap(FaultPlan())
        outcome = injector.request(t1.operations[0])
        assert outcome.decision is Decision.GRANT
        assert injector.history == (t1.operations[0],)
        assert injector.counters() == {
            "aborts": 0,
            "stall_waits": 0,
            "kills": 0,
            "crashes": 0,
            "crash_rollbacks": 0,
        }

    def test_name_and_attribute_delegation(self):
        injector, _, _ = _wrap(FaultPlan())
        assert injector.name == "faulty(strict-2pl)"
        assert injector.admitted_ids == frozenset({1, 2})
        assert injector.progress(1) == 0


class TestAbortAndKill:
    def test_abort_fires_once_at_the_trigger(self):
        plan = FaultPlan([FaultEvent(FaultKind.ABORT, 2, tx_id=1)])
        injector, t1, _ = _wrap(plan)
        assert injector.request(t1.operations[0]).decision is Decision.GRANT
        outcome = injector.request(t1.operations[1])
        assert outcome.decision is Decision.ABORT
        assert outcome.victims == (1,)
        assert injector.injected_aborts == 1
        # One-shot: the restarted incarnation does not re-fire it.
        injector.remove(1)
        assert injector.request(t1.operations[0]).decision is Decision.GRANT

    def test_kill_marks_the_victim_permanently(self):
        plan = FaultPlan([FaultEvent(FaultKind.KILL, 1, tx_id=2)])
        injector, _, t2 = _wrap(plan)
        outcome = injector.request(t2.operations[0])
        assert outcome.decision is Decision.ABORT
        assert injector.killed == frozenset({2})
        assert injector.injected_kills == 1

    def test_counts_are_cumulative_across_incarnations(self):
        # Trigger beyond the first incarnation's length: fires on retry.
        plan = FaultPlan([FaultEvent(FaultKind.ABORT, 3, tx_id=1)])
        injector, t1, _ = _wrap(plan)
        assert injector.request(t1.operations[0]).decision is Decision.GRANT
        assert injector.request(t1.operations[1]).decision is Decision.GRANT
        # The protocol restarts T1 (e.g. a deadlock victim) ...
        injector.remove(1)
        # ... and the third lifetime request fires the trigger.
        assert injector.request(t1.operations[0]).decision is Decision.ABORT


class TestStall:
    def test_stall_returns_wait_for_the_window(self):
        plan = FaultPlan(
            [FaultEvent(FaultKind.STALL, 1, tx_id=1, duration=2)]
        )
        injector, t1, _ = _wrap(plan)
        assert injector.request(t1.operations[0]).decision is Decision.WAIT
        assert injector.request(t1.operations[0]).decision is Decision.WAIT
        assert injector.request(t1.operations[0]).decision is Decision.GRANT
        assert injector.injected_stalls == 2
        # The stalled requests never reached the wrapped protocol.
        assert injector.history == (t1.operations[0],)


class TestCrash:
    def test_crash_rolls_back_in_flight_and_reports_victims(self):
        store = KVStore({"x": 0, "z": 0})
        plan = FaultPlan([FaultEvent(FaultKind.CRASH, 1)])
        injector, t1, t2 = _wrap(plan, store=store)

        assert injector.request(t1.operations[0]).decision is Decision.GRANT
        store.begin(1)
        store.write(1, "x", "dirty")
        # t2's next request trips the crash (1 grant so far).
        outcome = injector.request(t2.operations[0])
        assert outcome.decision is Decision.ABORT
        assert outcome.victims == (1,)
        assert injector.injected_crashes == 1
        assert injector.crash_rollbacks == 1
        # The store recovered: rolled back and usable again.
        assert not store.crashed
        assert store.peek("x") == 0
        assert store.open_transactions == frozenset()

    def test_crash_with_nothing_in_flight_is_silent(self):
        store = KVStore({"x": 0})
        plan = FaultPlan([FaultEvent(FaultKind.CRASH, 2)])
        injector, t1, t2 = _wrap(plan, store=store)
        assert injector.request(t1.operations[0]).decision is Decision.GRANT
        assert injector.request(t1.operations[1]).decision is Decision.GRANT
        injector.finish(1)
        store.begin(1)
        store.write(1, "x", "v")
        store.commit(1)
        # t1 committed; crash finds no in-flight victims, so t2 proceeds.
        outcome = injector.request(t2.operations[0])
        assert outcome.decision is Decision.GRANT
        assert injector.injected_crashes == 1
        assert store.peek("x") == "v"
