"""Tests for the prefix-extension APIs: ``Schedule.prefix``,
``RelativeSerializationGraph.extended_with`` and ``IncrementalRsg``."""

import pytest

from repro.core.dependency import DependencyRelation
from repro.core.rsg import IncrementalRsg, RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.errors import GraphError, InvalidScheduleError
from repro.specs.builders import absolute_spec, finest_spec


def _figure2_like():
    txs = [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "r[x] w[x]"),
        Transaction.from_notation(3, "r[x] w[y]"),
    ]
    return txs, finest_spec(txs)


def _edge_set(graph):
    return {(a, b, labels) for a, b, labels in graph.labelled_edges()}


class TestSchedulePrefix:
    def test_prefix_relaxes_completeness_only(self):
        txs, _spec = _figure2_like()
        prefix = Schedule.prefix(txs, [txs[0][0], txs[1][0]])
        assert not prefix.is_complete
        assert len(prefix) == 2
        with pytest.raises(InvalidScheduleError):
            # Program order still enforced.
            Schedule.prefix(txs, [txs[0][1]])

    def test_extended_with_becomes_complete_at_the_end(self):
        txs = [Transaction.from_notation(1, "r[x] w[x]")]
        prefix = Schedule.prefix(txs, [txs[0][0]])
        full = prefix.extended_with(txs[0][1])
        assert full.is_complete

    def test_dependency_extension_matches_scratch(self):
        txs, _spec = _figure2_like()
        order = [txs[0][0], txs[1][0], txs[2][0], txs[0][1], txs[1][1]]
        parent = Schedule.prefix(txs, order[:-1])
        child = parent.extended_with(order[-1])
        extended = DependencyRelation(parent).extended_with(child)
        scratch = DependencyRelation(child)
        for earlier in order:
            for later in order:
                assert extended.depends_on(later, earlier) == (
                    scratch.depends_on(later, earlier)
                )


class TestExtendedWith:
    def test_matches_from_scratch_construction(self):
        txs, spec = _figure2_like()
        order = [
            txs[0][0], txs[1][0], txs[2][0],
            txs[0][1], txs[1][1], txs[2][1],
        ]
        rsg = RelativeSerializationGraph(Schedule.prefix(txs, []), spec)
        for position, op in enumerate(order):
            rsg = rsg.extended_with(op)
            oracle = RelativeSerializationGraph(
                Schedule.prefix(txs, order[: position + 1]), spec
            )
            assert _edge_set(rsg.graph) == _edge_set(oracle.graph)
            assert rsg.is_acyclic == oracle.is_acyclic

    def test_requires_the_full_graph(self):
        txs, spec = _figure2_like()
        partial = RelativeSerializationGraph(
            Schedule.prefix(txs, []), spec, include_b_arcs=False
        )
        with pytest.raises(GraphError):
            partial.extended_with(txs[0][0])


class TestIncrementalRsg:
    def test_push_pop_roundtrip_restores_graph(self):
        txs, spec = _figure2_like()
        engine = IncrementalRsg(spec)
        for tx in txs:
            engine.add_transaction(tx)
        baseline = _edge_set(engine.graph)
        assert engine.try_push(txs[0][0])
        assert engine.try_push(txs[1][0])
        assert engine.try_push(txs[0][1])
        assert len(engine) == 3
        for _ in range(3):
            engine.pop()
        assert _edge_set(engine.graph) == baseline

    def test_rejection_is_exact_against_oracle(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "r[x] w[x]"),
        ]
        spec = absolute_spec(txs)
        engine = IncrementalRsg(spec)
        for tx in txs:
            engine.add_transaction(tx)
        for op in (txs[0][0], txs[1][0], txs[0][1]):
            assert engine.try_push(op)
        assert not engine.try_push(txs[1][1])
        witness = engine.last_rejected_cycle
        assert witness is not None and witness[0] == witness[-1]
        # Refusal left nothing behind: the op can be re-tried and the
        # answer is stable (monotonicity).
        assert not engine.try_push(txs[1][1])
        assert len(engine) == 3

    def test_push_uncertified_tracks_cyclic_extensions(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "r[x] w[x] r[y]"),
        ]
        spec = absolute_spec(txs)
        engine = IncrementalRsg(spec, maintain_reach=True)
        for tx in txs:
            engine.add_transaction(tx)
        for op in (txs[0][0], txs[1][0], txs[0][1]):
            assert engine.try_push(op)
        assert not engine.try_push(txs[1][1])
        engine.push_uncertified(txs[1][1])
        assert not engine.acyclic
        assert engine.witness is not None
        engine.push_uncertified(txs[1][2])
        assert not engine.acyclic  # extensions of a cyclic prefix stay cyclic
        schedule = Schedule(txs, engine.history)
        view = engine.materialize(schedule)
        assert not view.is_acyclic
        # Popping back above the first uncertified op clears the state.
        engine.pop()
        engine.pop()
        assert engine.acyclic

    def test_materialized_dependency_matches_scratch(self):
        txs, spec = _figure2_like()
        engine = IncrementalRsg(spec, maintain_reach=True)
        for tx in txs:
            engine.add_transaction(tx)
        order = [txs[0][0], txs[2][0], txs[1][0], txs[2][1]]
        for op in order:
            assert engine.try_push(op)
        schedule = Schedule.prefix(txs, order)
        dependency = engine.dependency_for(schedule)
        scratch = DependencyRelation(schedule)
        assert list(dependency.pairs()) == list(scratch.pairs())
