"""Unit tests for classical conflict serializability."""

import pytest

from repro.core.schedules import Schedule, conflict_equivalent
from repro.core.serializability import (
    equivalent_serial_order,
    equivalent_serial_schedule,
    is_conflict_serializable,
    serialization_graph,
)
from repro.core.transactions import Transaction
from repro.errors import CycleError


@pytest.fixture()
def lost_update():
    txs = [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "r[x] w[x]"),
    ]
    return txs, Schedule.from_notation(txs, "r1[x] r2[x] w1[x] w2[x]")


class TestSerializationGraph:
    def test_nodes_are_transactions(self, fig1):
        graph = serialization_graph(fig1.schedule("Srs"))
        assert set(graph.nodes()) == {1, 2, 3}

    def test_edges_follow_conflict_order(self):
        txs = [
            Transaction.from_notation(1, "w[x]"),
            Transaction.from_notation(2, "r[x]"),
        ]
        s = Schedule.from_notation(txs, "w1[x] r2[x]")
        graph = serialization_graph(s)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_lost_update_creates_cycle(self, lost_update):
        _, s = lost_update
        graph = serialization_graph(s)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)


class TestConflictSerializable:
    def test_serial_schedule_is_serializable(self, fig1):
        assert is_conflict_serializable(Schedule.serial(list(fig1.transactions)))

    def test_lost_update_is_not_serializable(self, lost_update):
        _, s = lost_update
        assert not is_conflict_serializable(s)

    def test_paper_sra_is_not_conflict_serializable(self, fig1):
        # Sra is correct under relative atomicity but not under the
        # traditional model — the whole point of the paper.
        assert not is_conflict_serializable(fig1.schedule("Sra"))

    def test_nonconflicting_interleaving_is_serializable(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "r[y] w[y]"),
        ]
        s = Schedule.from_notation(txs, "r1[x] r2[y] w1[x] w2[y]")
        assert is_conflict_serializable(s)


class TestEquivalentSerial:
    def test_order_witnesses_equivalence(self):
        txs = [
            Transaction.from_notation(1, "w[x]"),
            Transaction.from_notation(2, "r[x] w[y]"),
            Transaction.from_notation(3, "r[y]"),
        ]
        s = Schedule.from_notation(txs, "w1[x] r2[x] w2[y] r3[y]")
        order = equivalent_serial_order(s)
        assert order == [1, 2, 3]
        serial = equivalent_serial_schedule(s)
        assert serial.is_serial
        assert conflict_equivalent(s, serial)

    def test_raises_on_unserializable(self, lost_update):
        _, s = lost_update
        with pytest.raises(CycleError) as excinfo:
            equivalent_serial_order(s)
        assert excinfo.value.cycle is not None

    def test_reversed_conflicts_reverse_the_order(self):
        txs = [
            Transaction.from_notation(1, "w[x]"),
            Transaction.from_notation(2, "r[x]"),
        ]
        s = Schedule.from_notation(txs, "r2[x] w1[x]")
        assert equivalent_serial_order(s) == [2, 1]
