"""Unit tests for the depends-on relation (Section 2)."""

import pytest

from repro.core.dependency import DependencyRelation
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction


@pytest.fixture()
def chain_schedule():
    """w1[x] w2[y] r3[y] w3[z] r1[z] — the Figure 2 shape where w2[y]
    reaches r1[z] only transitively (through T3)."""
    txs = [
        Transaction.from_notation(1, "w[x] r[z]"),
        Transaction.from_notation(2, "w[y]"),
        Transaction.from_notation(3, "r[y] w[z]"),
    ]
    return Schedule.from_notation(txs, "w1[x] w2[y] r3[y] w3[z] r1[z]")


class TestDirectDependencies:
    def test_conflict_creates_dependency(self, chain_schedule):
        dep = DependencyRelation(chain_schedule, transitive=False)
        w2y = chain_schedule[1]
        r3y = chain_schedule[2]
        assert dep.depends_on(r3y, w2y)

    def test_program_order_creates_dependency(self, chain_schedule):
        dep = DependencyRelation(chain_schedule, transitive=False)
        r3y = chain_schedule[2]
        w3z = chain_schedule[3]
        assert dep.depends_on(w3z, r3y)

    def test_no_dependency_without_conflict_or_program_order(
        self, chain_schedule
    ):
        dep = DependencyRelation(chain_schedule, transitive=False)
        w1x = chain_schedule[0]
        w2y = chain_schedule[1]
        assert not dep.depends_on(w2y, w1x)
        assert not dep.depends_on(w1x, w2y)

    def test_direct_mode_misses_transitive_path(self, chain_schedule):
        dep = DependencyRelation(chain_schedule, transitive=False)
        w2y = chain_schedule[1]
        r1z = chain_schedule[4]
        assert not dep.depends_on(r1z, w2y)


class TestTransitiveClosure:
    def test_figure2_transitive_dependency(self, chain_schedule):
        # The paper: "r1[z] is affected by w2[y]" via w2[y] -> r3[y] ->
        # w3[z] -> r1[z].
        dep = DependencyRelation(chain_schedule)
        w2y = chain_schedule[1]
        r1z = chain_schedule[4]
        assert dep.depends_on(r1z, w2y)
        assert not dep.depends_on(w2y, r1z)

    def test_depends_on_respects_schedule_order(self, chain_schedule):
        dep = DependencyRelation(chain_schedule)
        w1x = chain_schedule[0]
        r1z = chain_schedule[4]
        assert dep.depends_on(r1z, w1x)  # program order
        assert not dep.depends_on(w1x, r1z)  # never backwards

    def test_related_is_symmetric_wrapper(self, chain_schedule):
        dep = DependencyRelation(chain_schedule)
        w2y = chain_schedule[1]
        r1z = chain_schedule[4]
        assert dep.related(w2y, r1z)
        assert dep.related(r1z, w2y)

    def test_dependents_and_dependencies_are_inverse(self, chain_schedule):
        dep = DependencyRelation(chain_schedule)
        for op in chain_schedule:
            for other in dep.dependents_of(op):
                assert op in dep.dependencies_of(other)

    def test_cross_transaction_pairs_exclude_same_transaction(
        self, chain_schedule
    ):
        dep = DependencyRelation(chain_schedule)
        for earlier, later in dep.cross_transaction_pairs():
            assert earlier.tx != later.tx
            assert chain_schedule.precedes(earlier, later)

    def test_pairs_include_program_order(self, chain_schedule):
        dep = DependencyRelation(chain_schedule)
        pairs = set(dep.pairs())
        assert (chain_schedule[0], chain_schedule[4]) in pairs  # w1[x]->r1[z]

    def test_as_graph_matches_pairs(self, chain_schedule):
        dep = DependencyRelation(chain_schedule)
        graph = dep.as_graph()
        assert set(graph.edges()) == set(dep.pairs())

    def test_closure_is_transitive(self, chain_schedule):
        dep = DependencyRelation(chain_schedule)
        ops = chain_schedule.operations
        for a in ops:
            for b in ops:
                for c in ops:
                    if dep.depends_on(b, a) and dep.depends_on(c, b):
                        assert dep.depends_on(c, a)
