"""Unit tests for the brute-force enumerators."""

import math

from repro.core.brute import (
    brute_force_relatively_serializable,
    conflict_equivalent_schedules,
)
from repro.core.rsg import is_relatively_serializable
from repro.core.schedules import Schedule, conflict_equivalent
from repro.core.transactions import Transaction
from repro.specs.builders import absolute_spec, finest_spec


def _txs():
    return [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "w[x] r[y]"),
    ]


class TestConflictEquivalentEnumeration:
    def test_input_is_among_results(self):
        txs = _txs()
        s = Schedule.from_notation(txs, "r1[x] w2[x] w1[x] r2[y]")
        results = list(conflict_equivalent_schedules(s))
        assert s in results

    def test_all_results_are_conflict_equivalent(self):
        txs = _txs()
        s = Schedule.from_notation(txs, "r1[x] w1[x] w2[x] r2[y]")
        for candidate in conflict_equivalent_schedules(s):
            assert conflict_equivalent(s, candidate)

    def test_results_are_distinct(self):
        txs = _txs()
        s = Schedule.serial(txs)
        results = list(conflict_equivalent_schedules(s))
        assert len(results) == len(set(results))

    def test_no_conflicts_enumerates_all_interleavings(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "r[y] w[y]"),
        ]
        s = Schedule.serial(txs)
        expected = math.comb(4, 2)  # choose T1's positions among 4 slots
        assert sum(1 for _ in conflict_equivalent_schedules(s)) == expected

    def test_total_conflicts_pin_the_order(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[y]"),
            Transaction.from_notation(2, "w[x] w[y]"),
        ]
        s = Schedule.from_notation(txs, "w1[x] w1[y] w2[x] w2[y]")
        # Every operation pair across transactions conflicts via x or y:
        # w1[x]<w2[x], w1[y]<w2[y]; the only freedom is w1[y] vs w2[x].
        assert sum(1 for _ in conflict_equivalent_schedules(s)) == 2


class TestBruteForceRelativeSerializability:
    def test_agrees_with_rsg_on_paper_schedules(self, fig1):
        for name in ("Sra", "Srs", "S2"):
            schedule = fig1.schedule(name)
            assert brute_force_relatively_serializable(
                schedule, fig1.spec
            ) == is_relatively_serializable(schedule, fig1.spec)

    def test_rejects_under_absolute_what_rsg_rejects(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "r[x] w[x]"),
        ]
        s = Schedule.from_notation(txs, "r1[x] r2[x] w1[x] w2[x]")
        spec = absolute_spec(txs)
        assert not brute_force_relatively_serializable(s, spec)

    def test_finest_spec_accepts_everything(self):
        txs = _txs()
        spec = finest_spec(txs)
        s = Schedule.from_notation(txs, "w2[x] r1[x] r2[y] w1[x]")
        assert brute_force_relatively_serializable(s, spec)
