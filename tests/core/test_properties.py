"""Hypothesis property tests for the core theory.

These check the paper's structural claims on randomly generated small
instances: the class containments of Figure 5, both directions of
Theorem 1 against brute force, the Lemma 1 collapse under absolute
atomicity, and the conflict-equivalence invariance the Theorem 1 proof
relies on.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.brute import brute_force_relatively_serializable
from repro.core.checkers import is_relatively_atomic, is_relatively_serial
from repro.core.dependency import DependencyRelation
from repro.core.operations import read, write
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule, conflict_equivalent
from repro.core.serializability import is_conflict_serializable
from repro.core.transactions import Transaction
from repro.core.atomicity import RelativeAtomicitySpec
from repro.specs.builders import absolute_spec

OBJECTS = ("x", "y")


@st.composite
def transaction_sets(draw, max_transactions=3, max_ops=3):
    """A list of 2..max_transactions transactions of 1..max_ops ops."""
    n = draw(st.integers(2, max_transactions))
    transactions = []
    for tx_id in range(1, n + 1):
        length = draw(st.integers(1, max_ops))
        ops = []
        for _ in range(length):
            obj = draw(st.sampled_from(OBJECTS))
            is_write = draw(st.booleans())
            ops.append(write(obj) if is_write else read(obj))
        transactions.append(Transaction(tx_id, ops))
    return transactions


@st.composite
def problems(draw, max_transactions=3, max_ops=3):
    """(transactions, random spec, random schedule) triples."""
    transactions = draw(transaction_sets(max_transactions, max_ops))
    views = {}
    for tx in transactions:
        for observer in transactions:
            if tx.tx_id == observer.tx_id:
                continue
            cuts = draw(
                st.sets(st.integers(1, max(1, len(tx) - 1)), max_size=len(tx))
            )
            views[(tx.tx_id, observer.tx_id)] = {
                cut for cut in cuts if cut <= len(tx) - 1
            }
    spec = RelativeAtomicitySpec(transactions, views)
    schedule = draw(interleavings_of(transactions))
    return transactions, spec, schedule


@st.composite
def interleavings_of(draw, transactions=None):
    """A schedule over the given transactions, drawn interleaving by
    interleaving choice."""
    remaining = {tx.tx_id: list(tx.operations) for tx in transactions}
    order = []
    while any(remaining.values()):
        choices = sorted(
            tx_id for tx_id, ops in remaining.items() if ops
        )
        tx_id = draw(st.sampled_from(choices))
        order.append(remaining[tx_id].pop(0))
    return Schedule(list(transactions), order)


@given(problems())
@settings(max_examples=120, deadline=None)
def test_figure5_containments_hold(problem):
    transactions, spec, schedule = problem
    rsg = RelativeSerializationGraph(schedule, spec)
    atomic = is_relatively_atomic(schedule, spec)
    rel_serial = is_relatively_serial(schedule, spec, rsg.dependency)
    rsr = rsg.is_acyclic
    if schedule.is_serial:
        assert rel_serial
    if atomic:
        assert rel_serial
    if rel_serial:
        assert rsr
    if is_conflict_serializable(schedule):
        assert rsr


@given(problems())
@settings(max_examples=80, deadline=None)
def test_theorem1_matches_brute_force(problem):
    _, spec, schedule = problem
    assert RelativeSerializationGraph(
        schedule, spec
    ).is_acyclic == brute_force_relatively_serializable(schedule, spec)


@given(problems())
@settings(max_examples=80, deadline=None)
def test_theorem1_witness_is_valid(problem):
    _, spec, schedule = problem
    rsg = RelativeSerializationGraph(schedule, spec)
    if not rsg.is_acyclic:
        return
    witness = rsg.equivalent_relatively_serial_schedule()
    assert conflict_equivalent(schedule, witness)
    assert is_relatively_serial(witness, spec)


@given(transaction_sets().flatmap(
    lambda txs: st.tuples(st.just(txs), interleavings_of(txs))
))
@settings(max_examples=100, deadline=None)
def test_lemma1_absolute_atomicity_collapses_to_csr(pair):
    transactions, schedule = pair
    spec = absolute_spec(transactions)
    assert RelativeSerializationGraph(
        schedule, spec
    ).is_acyclic == is_conflict_serializable(schedule)


@given(problems())
@settings(max_examples=60, deadline=None)
def test_dependency_relation_invariant_under_conflict_equivalence(problem):
    from repro.core.brute import conflict_equivalent_schedules
    import itertools

    _, _, schedule = problem
    base = DependencyRelation(schedule)
    base_pairs = set(base.pairs())
    for candidate in itertools.islice(
        conflict_equivalent_schedules(schedule), 5
    ):
        assert set(DependencyRelation(candidate).pairs()) == base_pairs


@given(problems())
@settings(max_examples=60, deadline=None)
def test_dependency_is_transitive_and_ordered(problem):
    _, _, schedule = problem
    dep = DependencyRelation(schedule)
    pairs = set(dep.pairs())
    for earlier, later in pairs:
        assert schedule.precedes(earlier, later)
    for a, b in pairs:
        for c, d in pairs:
            if b == c:
                assert (a, d) in pairs


@given(problems())
@settings(max_examples=100, deadline=None)
def test_lemma2_relatively_serial_implies_acyclic_rsg(problem):
    # Lemma 2 of the paper, directly: if S is relatively serial then
    # RSG(S) is acyclic (every arc is consistent with S's total order).
    _, spec, schedule = problem
    rsg = RelativeSerializationGraph(schedule, spec)
    if is_relatively_serial(schedule, spec, rsg.dependency):
        assert rsg.is_acyclic


@given(problems())
@settings(max_examples=60, deadline=None)
def test_lemma2_arcs_consistent_with_relatively_serial_order(problem):
    # The proof's actual argument: every arc of a relatively serial
    # schedule's RSG points forward in the schedule.
    _, spec, schedule = problem
    rsg = RelativeSerializationGraph(schedule, spec)
    if not is_relatively_serial(schedule, spec, rsg.dependency):
        return
    for source, target in rsg.graph.edges():
        assert schedule.precedes(source, target), (
            f"arc {source} -> {target} points backwards in {schedule}"
        )
