"""Unit tests for the recovery classes (RC / ACA / ST)."""

import pytest

from repro.core.recovery import (
    avoids_cascading_aborts,
    commit_position,
    is_recoverable,
    is_strict,
    reads_from_pairs,
    recovery_profile,
)
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction


def _schedule(programs, order):
    txs = [
        Transaction.from_notation(tx_id, body)
        for tx_id, body in programs.items()
    ]
    return Schedule.from_notation(txs, order)


class TestReadsFrom:
    def test_simple_reads_from(self):
        s = _schedule({1: "w[x]", 2: "r[x]"}, "w1[x] r2[x]")
        pairs = [(r.label, w.label) for r, w in reads_from_pairs(s)]
        assert pairs == [("r2[x]", "w1[x]")]

    def test_latest_writer_wins(self):
        s = _schedule(
            {1: "w[x]", 2: "w[x]", 3: "r[x]"}, "w1[x] w2[x] r3[x]"
        )
        pairs = [(r.label, w.label) for r, w in reads_from_pairs(s)]
        assert pairs == [("r3[x]", "w2[x]")]

    def test_own_writes_are_not_reads_from(self):
        s = _schedule({1: "w[x] r[x]", 2: "w[y]"}, "w1[x] r1[x] w2[y]")
        assert list(reads_from_pairs(s)) == []

    def test_read_before_any_write_has_no_source(self):
        s = _schedule({1: "r[x]", 2: "w[x]"}, "r1[x] w2[x]")
        assert list(reads_from_pairs(s)) == []


class TestCommitPosition:
    def test_is_last_operation(self):
        s = _schedule({1: "r[x] w[y]", 2: "w[x]"}, "r1[x] w2[x] w1[y]")
        assert commit_position(s, 1) == 2
        assert commit_position(s, 2) == 1


class TestClasses:
    def test_serial_is_strict(self):
        s = _schedule({1: "w[x] w[y]", 2: "r[x] r[y]"},
                      "w1[x] w1[y] r2[x] r2[y]")
        assert recovery_profile(s) == {"rc": True, "aca": True, "st": True}

    def test_dirty_read_after_commit_is_aca(self):
        # T2 reads x only after T1's last op (its commit): ACA holds.
        s = _schedule({1: "w[x] w[y]", 2: "r[x]"}, "w1[x] w1[y] r2[x]")
        assert avoids_cascading_aborts(s)
        assert is_strict(s)

    def test_dirty_read_before_commit_breaks_aca_not_rc(self):
        # T2 reads T1's uncommitted write but commits after T1: RC only.
        s = _schedule(
            {1: "w[x] w[y]", 2: "r[x] r[z]"},
            "w1[x] r2[x] w1[y] r2[z]",
        )
        assert is_recoverable(s)
        assert not avoids_cascading_aborts(s)
        assert not is_strict(s)

    def test_reader_committing_first_breaks_rc(self):
        s = _schedule(
            {1: "w[x] w[y]", 2: "r[x]"},
            "w1[x] r2[x] w1[y]",
        )
        assert not is_recoverable(s)

    def test_dirty_overwrite_breaks_strictness_only(self):
        # T2 overwrites T1's uncommitted write but never reads it:
        # RC and ACA hold (no reads-from), strictness does not.
        s = _schedule(
            {1: "w[x] w[y]", 2: "w[x]"},
            "w1[x] w2[x] w1[y]",
        )
        assert is_recoverable(s)
        assert avoids_cascading_aborts(s)
        assert not is_strict(s)

    def test_class_chain_st_aca_rc(self):
        # Exhaustively: ST => ACA => RC on all interleavings of a small
        # instance.
        from repro.workloads.enumerate import all_interleavings

        txs = [
            Transaction.from_notation(1, "w[x] r[y]"),
            Transaction.from_notation(2, "r[x] w[y]"),
        ]
        for schedule in all_interleavings(txs):
            profile = recovery_profile(schedule)
            if profile["st"]:
                assert profile["aca"]
            if profile["aca"]:
                assert profile["rc"]


class TestProtocolsAndRecovery:
    def test_strict_2pl_histories_are_strict(self):
        from repro.protocols import TwoPhaseLockingScheduler
        from repro.sim.runner import simulate
        from repro.workloads.random_schedules import random_transactions

        for seed in range(6):
            txs = random_transactions(
                4, (2, 4), 3, write_probability=0.6, seed=seed
            )
            result = simulate(txs, TwoPhaseLockingScheduler())
            assert is_strict(result.schedule), seed

    def test_donation_trades_recovery_for_concurrency(self):
        # The paper's Sra itself: T2 reads x from T1 and commits while
        # T1 is still running — the early visibility that relative
        # atomicity buys costs every recovery guarantee, which is
        # exactly the trade-off the altruistic-locking literature
        # [SGMA87] wrestles with.  The profile makes it measurable.
        from repro.paper import figure1

        sra = figure1().schedule("Sra")
        assert recovery_profile(sra) == {
            "rc": False,
            "aca": False,
            "st": False,
        }
        # The offending reads-from edge is the one the spec permits:
        # r2[x] observes w1[x] across T1's unit boundary.
        pairs = {
            (r.label, w.label) for r, w in reads_from_pairs(sra)
        }
        assert ("r2[x]", "w1[x]") in pairs


class TestEdgeCases:
    def test_empty_schedule_is_in_every_class(self):
        empty = Schedule([], [])
        assert list(reads_from_pairs(empty)) == []
        assert recovery_profile(empty) == {
            "rc": True,
            "aca": True,
            "st": True,
        }

    def test_single_transaction_schedule_is_strict(self):
        s = _schedule({1: "r[x] w[x] w[x]"}, "r1[x] w1[x] w1[x]")
        assert recovery_profile(s) == {
            "rc": True,
            "aca": True,
            "st": True,
        }

    def test_read_only_transactions_are_trivially_strict(self):
        s = _schedule({1: "r[x]", 2: "r[x]"}, "r1[x] r2[x]")
        assert recovery_profile(s) == {
            "rc": True,
            "aca": True,
            "st": True,
        }

    def test_uncommitted_reader_breaks_aca_but_not_rc(self):
        # T2 reads T1's write before T1's commit point but commits after
        # it: recoverable, yet an abort of T1 would cascade into T2.
        s = _schedule(
            {1: "w[x] w[y]", 2: "r[x] r[y]"},
            "w1[x] r2[x] w1[y] r2[y]",
        )
        assert is_recoverable(s)
        assert not avoids_cascading_aborts(s)
        assert not is_strict(s)

    def test_dirty_read_with_early_commit_breaks_rc(self):
        # The reader commits before the writer it read from: aborting
        # the writer after the reader committed is unrecoverable.
        s = _schedule(
            {1: "w[x] w[y]", 2: "r[x]"},
            "w1[x] r2[x] w1[y]",
        )
        assert not is_recoverable(s)
        assert not avoids_cascading_aborts(s)

    def test_blind_overwrite_breaks_only_strictness(self):
        # No reads at all: RC and ACA hold vacuously, but overwriting an
        # uncommitted write already loses before-image discipline.
        s = _schedule(
            {1: "w[x] w[y]", 2: "w[x]"},
            "w1[x] w2[x] w1[y]",
        )
        assert is_recoverable(s)
        assert avoids_cascading_aborts(s)
        assert not is_strict(s)

    def test_commit_position_of_single_op_transaction(self):
        s = _schedule({1: "w[x]", 2: "r[x]"}, "w1[x] r2[x]")
        assert commit_position(s, 1) == 0
        assert commit_position(s, 2) == 1
