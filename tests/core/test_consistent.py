"""Unit tests for the relative-consistency (Farrag–Özsu) baseline."""

import pytest

from repro.core.brute import brute_force_relatively_consistent
from repro.core.checkers import is_relatively_atomic
from repro.core.consistent import (
    SearchBudgetExceeded,
    find_equivalent_relatively_atomic,
    is_relatively_consistent,
)
from repro.core.schedules import Schedule, conflict_equivalent
from repro.core.transactions import Transaction
from repro.specs.builders import absolute_spec
from repro.workloads.enumerate import all_interleavings


class TestWitnessSearch:
    def test_relatively_atomic_schedule_is_its_own_witness_class(self, fig1):
        sra = fig1.schedule("Sra")
        witness = find_equivalent_relatively_atomic(sra, fig1.spec)
        assert witness is not None
        assert is_relatively_atomic(witness, fig1.spec)
        assert conflict_equivalent(sra, witness)

    def test_witness_found_for_consistent_non_atomic_schedule(self, fig3):
        s = fig3.schedule("S2")
        assert not is_relatively_atomic(s, fig3.spec)
        witness = find_equivalent_relatively_atomic(s, fig3.spec)
        assert witness is not None
        assert is_relatively_atomic(witness, fig3.spec)
        assert conflict_equivalent(s, witness)

    def test_figure4_has_no_witness(self, fig4):
        # The paper's separation example: relatively serial but NOT
        # relatively consistent.
        assert (
            find_equivalent_relatively_atomic(fig4.schedule("S"), fig4.spec)
            is None
        )

    def test_budget_exhaustion_raises(self, fig1):
        with pytest.raises(SearchBudgetExceeded):
            is_relatively_consistent(
                fig1.schedule("S2"), fig1.spec, max_steps=1
            )


class TestAgainstBruteForce:
    def test_matches_brute_force_on_figure1(self, fig1):
        for name in ("Sra", "Srs", "S2"):
            schedule = fig1.schedule(name)
            assert is_relatively_consistent(
                schedule, fig1.spec
            ) == brute_force_relatively_consistent(schedule, fig1.spec)

    def test_matches_brute_force_exhaustively_on_small_instance(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[y]"),
            Transaction.from_notation(2, "w[y] w[x]"),
        ]
        from repro.specs.builders import uniform_spec

        spec = uniform_spec(txs, 1)
        for schedule in all_interleavings(txs):
            assert is_relatively_consistent(
                schedule, spec
            ) == brute_force_relatively_consistent(schedule, spec), str(
                schedule
            )

    def test_under_absolute_spec_matches_conflict_serializability(self):
        from repro.core.serializability import is_conflict_serializable

        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "w[x] r[y]"),
        ]
        spec = absolute_spec(txs)
        for schedule in all_interleavings(txs):
            # Relatively atomic == serial under absolute atomicity, so
            # relatively consistent == conflict serializable.
            assert is_relatively_consistent(
                schedule, spec
            ) == is_conflict_serializable(schedule), str(schedule)


class TestPrunedSearchStaysComplete:
    def test_every_consistent_schedule_yields_valid_witness(self, fig1):
        count = 0
        for schedule in all_interleavings(fig1.transactions):
            witness = find_equivalent_relatively_atomic(schedule, fig1.spec)
            if witness is None:
                continue
            count += 1
            assert is_relatively_atomic(witness, fig1.spec)
            assert conflict_equivalent(schedule, witness)
            if count >= 200:  # bounded: full census runs in analysis tests
                break
        assert count > 0
