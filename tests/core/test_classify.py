"""Unit tests for the Figure 5 classifier."""

from repro.core.classify import ScheduleClass, classify
from repro.core.schedules import Schedule


class TestClassify:
    def test_sra_profile(self, fig1):
        report = classify(fig1.schedule("Sra"), fig1.spec)
        assert not report.serial
        assert report.relatively_atomic
        assert report.relatively_serial
        assert report.relatively_consistent
        assert report.relatively_serializable
        assert not report.conflict_serializable

    def test_srs_profile(self, fig1):
        report = classify(fig1.schedule("Srs"), fig1.spec)
        assert not report.relatively_atomic
        assert report.relatively_serial
        assert report.relatively_serializable

    def test_s2_profile(self, fig1):
        report = classify(fig1.schedule("S2"), fig1.spec)
        assert not report.relatively_serial
        assert report.relatively_serializable

    def test_figure4_profile(self, fig4):
        report = classify(fig4.schedule("S"), fig4.spec)
        assert report.relatively_serial
        assert report.relatively_serializable
        assert report.relatively_consistent is False
        assert not report.conflict_serializable

    def test_serial_schedule_is_in_every_class(self, fig1):
        serial = Schedule.serial(list(fig1.transactions))
        report = classify(serial, fig1.spec)
        assert report.memberships == frozenset(ScheduleClass)

    def test_consistency_test_can_be_disabled(self, fig1):
        report = classify(
            fig1.schedule("Sra"), fig1.spec, consistency_budget=None
        )
        assert report.relatively_consistent is None
        assert ScheduleClass.RELATIVELY_CONSISTENT not in report.memberships

    def test_budget_exhaustion_reports_none(self, fig1):
        report = classify(
            fig1.schedule("S2"), fig1.spec, consistency_budget=1
        )
        assert report.relatively_consistent is None

    def test_describe_mentions_every_class(self, fig1):
        text = classify(fig1.schedule("Sra"), fig1.spec).describe()
        for name in (
            "serial",
            "conflict serializable",
            "relatively atomic",
            "relatively serial",
            "relatively consistent",
            "relatively serializable",
        ):
            assert name in text

    def test_describe_marks_undecided_with_question_mark(self, fig1):
        text = classify(
            fig1.schedule("Sra"), fig1.spec, consistency_budget=None
        ).describe()
        assert "?" in text
