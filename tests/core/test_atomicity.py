"""Unit tests for atomic units and relative atomicity specifications."""

import pytest

from repro.core.atomicity import Atomicity, AtomicUnit, RelativeAtomicitySpec
from repro.core.transactions import Transaction
from repro.errors import InvalidSpecError, MissingSpecError


@pytest.fixture()
def t1():
    return Transaction.from_notation(1, "r[x] w[x] w[z] r[y]")


@pytest.fixture()
def t2():
    return Transaction.from_notation(2, "r[y] w[y] r[x]")


class TestAtomicUnit:
    def test_contains_index(self):
        unit = AtomicUnit(tx=1, ordinal=1, start=1, end=3)
        assert unit.contains_index(1)
        assert unit.contains_index(3)
        assert not unit.contains_index(0)
        assert not unit.contains_index(4)

    def test_contains_operation(self, t1):
        unit = AtomicUnit(tx=1, ordinal=1, start=0, end=1)
        assert unit.contains(t1[0])
        assert not unit.contains(t1[2])

    def test_contains_rejects_other_transaction(self, t1, t2):
        unit = AtomicUnit(tx=1, ordinal=1, start=0, end=3)
        assert not unit.contains(t2[0])

    def test_operations_slices_transaction(self, t1):
        unit = AtomicUnit(tx=1, ordinal=2, start=2, end=3)
        assert [op.label for op in unit.operations(t1)] == ["w1[z]", "r1[y]"]

    def test_operations_rejects_wrong_transaction(self, t1, t2):
        unit = AtomicUnit(tx=1, ordinal=1, start=0, end=1)
        with pytest.raises(InvalidSpecError):
            unit.operations(t2)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(InvalidSpecError):
            AtomicUnit(tx=1, ordinal=1, start=2, end=1)

    def test_size(self):
        assert AtomicUnit(tx=1, ordinal=1, start=2, end=4).size == 3


class TestAtomicity:
    def test_absolute_has_one_unit(self):
        view = Atomicity(1, 2, length=4)
        assert view.is_absolute
        assert len(view.units) == 1
        assert view.units[0].start == 0
        assert view.units[0].end == 3

    def test_breakpoints_split_units(self):
        view = Atomicity(1, 2, length=4, breakpoints=[2])
        assert [(unit.start, unit.end) for unit in view.units] == [
            (0, 1),
            (2, 3),
        ]
        assert view.unit(1).ordinal == 1
        assert view.unit(2).ordinal == 2

    def test_finest_view(self):
        view = Atomicity(1, 2, length=3, breakpoints=[1, 2])
        assert view.is_finest
        assert all(unit.size == 1 for unit in view.units)

    def test_unit_of_index(self):
        view = Atomicity(1, 2, length=4, breakpoints=[2, 3])
        assert view.unit_of(0) is view.units[0]
        assert view.unit_of(1) is view.units[0]
        assert view.unit_of(2) is view.units[1]
        assert view.unit_of(3) is view.units[2]

    def test_unit_of_out_of_range(self):
        view = Atomicity(1, 2, length=2)
        with pytest.raises(InvalidSpecError):
            view.unit_of(2)

    def test_push_and_pull_indices(self):
        # Paper example: PushForward(r1[x], T2) = w1[x],
        # PullBackward(r1[y], T2) = w1[z] under Atomicity(T1, T2) =
        # [r1[x] w1[x]] [w1[z] r1[y]].
        view = Atomicity(1, 2, length=4, breakpoints=[2])
        assert view.push_forward_index(0) == 1
        assert view.pull_backward_index(3) == 2

    def test_rejects_self_view(self):
        with pytest.raises(InvalidSpecError):
            Atomicity(1, 1, length=3)

    def test_rejects_out_of_range_breakpoint(self):
        with pytest.raises(InvalidSpecError):
            Atomicity(1, 2, length=3, breakpoints=[3])
        with pytest.raises(InvalidSpecError):
            Atomicity(1, 2, length=3, breakpoints=[0])

    def test_rejects_nonpositive_length(self):
        with pytest.raises(InvalidSpecError):
            Atomicity(1, 2, length=0)

    def test_render_uses_pipe_separator(self, t1):
        view = Atomicity(1, 2, length=4, breakpoints=[2])
        assert view.render(t1) == "r1[x] w1[x] | w1[z] r1[y]"

    def test_equality(self):
        a = Atomicity(1, 2, 4, [2])
        b = Atomicity(1, 2, 4, [2])
        c = Atomicity(1, 2, 4, [1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestRelativeAtomicitySpec:
    def test_defaults_to_absolute(self, t1, t2):
        spec = RelativeAtomicitySpec([t1, t2])
        assert spec.atomicity(1, 2).is_absolute
        assert spec.is_absolute

    def test_accepts_breakpoint_iterables(self, t1, t2):
        spec = RelativeAtomicitySpec([t1, t2], {(1, 2): [2]})
        assert spec.atomicity(1, 2).breakpoints == {2}
        assert spec.atomicity(2, 1).is_absolute
        assert not spec.is_absolute

    def test_accepts_view_notation_strings(self, t1, t2):
        spec = RelativeAtomicitySpec(
            [t1, t2], {(1, 2): "r[x] w[x] | w[z] r[y]"}
        )
        assert spec.atomicity(1, 2).breakpoints == {2}

    def test_view_notation_must_match_program(self, t1, t2):
        with pytest.raises(InvalidSpecError):
            RelativeAtomicitySpec([t1, t2], {(1, 2): "w[x] r[x] | w[z] r[y]"})

    def test_view_notation_must_cover_program(self, t1, t2):
        with pytest.raises(InvalidSpecError):
            RelativeAtomicitySpec([t1, t2], {(1, 2): "r[x] w[x]"})

    def test_view_notation_rejects_leading_separator(self, t1, t2):
        with pytest.raises(InvalidSpecError):
            RelativeAtomicitySpec([t1, t2], {(1, 2): "| r[x] w[x] w[z] r[y]"})

    def test_rejects_unknown_transactions(self, t1, t2):
        with pytest.raises(InvalidSpecError):
            RelativeAtomicitySpec([t1, t2], {(1, 9): [1]})

    def test_rejects_self_pair(self, t1, t2):
        with pytest.raises(InvalidSpecError):
            RelativeAtomicitySpec([t1, t2], {(1, 1): [1]})

    def test_atomicity_of_unknown_transaction(self, t1, t2):
        spec = RelativeAtomicitySpec([t1, t2])
        with pytest.raises(MissingSpecError):
            spec.atomicity(9, 1)

    def test_push_forward_and_pull_backward(self, fig1):
        spec = fig1.spec
        t1 = spec.transactions[1]
        # Paper, Section 3: PushForward(r1[x], T2) is w1[x] and
        # PullBackward(r1[y], T2) is w1[z].
        assert spec.push_forward(t1[0], observer=2) == t1[1]
        assert spec.pull_backward(t1[3], observer=2) == t1[2]

    def test_unit_of_requires_bound_operation(self, t1, t2):
        from repro.core.operations import read

        spec = RelativeAtomicitySpec([t1, t2])
        with pytest.raises(InvalidSpecError):
            spec.unit_of(read("x"), observer=2)

    def test_pairs_enumerates_ordered_pairs(self, t1, t2):
        spec = RelativeAtomicitySpec([t1, t2])
        assert set(spec.pairs()) == {(1, 2), (2, 1)}

    def test_render_lists_all_views(self, fig1):
        rendered = fig1.spec.render()
        assert "Atomicity(T1, T2): r1[x] w1[x] | w1[z] r1[y]" in rendered
        assert rendered.count("Atomicity(") == 6
