"""Unit tests for the relative serialization graph (Definition 3)."""

import pytest

from repro.core.checkers import is_relatively_serial
from repro.core.rsg import (
    ArcKind,
    RelativeSerializationGraph,
    is_relatively_serializable,
)
from repro.core.schedules import Schedule, conflict_equivalent
from repro.core.transactions import Transaction
from repro.errors import CycleError, InvalidSpecError
from repro.paper.figures import FIGURE3_EXPECTED_ARCS
from repro.specs.builders import absolute_spec


class TestConstruction:
    def test_vertices_are_all_operations(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        assert rsg.graph.node_count == 6
        assert set(rsg.graph.nodes()) == set(fig3.schedule("S2").operations)

    def test_internal_arcs_follow_program_order(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        internal = {
            (a.label, b.label) for a, b in rsg.arcs(ArcKind.INTERNAL)
        }
        assert internal == {
            ("w1[x]", "r1[z]"),
            ("r2[x]", "w2[y]"),
            ("r3[z]", "r3[y]"),
        }

    def test_figure3_arc_set_is_reproduced_exactly(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        got = {
            (a.label, b.label): frozenset(kind.value for kind in labels)
            for a, b, labels in rsg.graph.labelled_edges()
        }
        assert got == FIGURE3_EXPECTED_ARCS

    def test_paper_quoted_f_arc(self, fig3):
        # "RSG(S2) contains the F-arc from r1[z] to r2[x]".
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        t1 = fig3.spec.transactions[1]
        t2 = fig3.spec.transactions[2]
        assert ArcKind.PUSH_FORWARD in rsg.arc_kinds(t1[1], t2[0])

    def test_paper_quoted_b_arc(self, fig3):
        # "RSG(S2) contains the B-arc from w2[y] to r3[z]".
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        t2 = fig3.spec.transactions[2]
        t3 = fig3.spec.transactions[3]
        assert ArcKind.PULL_BACKWARD in rsg.arc_kinds(t2[1], t3[0])

    def test_spec_mismatch_rejected(self, fig3, fig1):
        with pytest.raises(InvalidSpecError):
            RelativeSerializationGraph(fig3.schedule("S2"), fig1.spec)

    def test_arcs_unfiltered_returns_every_edge(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        assert len(rsg.arcs()) == rsg.graph.edge_count


class TestAcyclicity:
    def test_figure3_rsg_is_acyclic(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        assert rsg.is_acyclic
        assert rsg.cycle is None

    def test_relatively_serializable_schedule_accepted(self, fig1):
        assert is_relatively_serializable(fig1.schedule("S2"), fig1.spec)

    def test_non_serializable_schedule_rejected(self):
        # Classic lost-update interleaving under absolute atomicity.
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "r[x] w[x]"),
        ]
        s = Schedule.from_notation(txs, "r1[x] r2[x] w1[x] w2[x]")
        spec = absolute_spec(txs)
        rsg = RelativeSerializationGraph(s, spec)
        assert not rsg.is_acyclic
        assert rsg.cycle is not None
        # The witness is a real cycle in the graph.
        cycle = rsg.cycle
        assert cycle[0] == cycle[-1]
        for a, b in zip(cycle, cycle[1:]):
            assert rsg.graph.has_edge(a, b)

    def test_cycle_is_cached(self, fig3):
        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        assert rsg.cycle is rsg.cycle  # same object, computed once


class TestTheoremOneConstructive:
    def test_extracted_schedule_is_relatively_serial(self, fig1):
        rsg = RelativeSerializationGraph(fig1.schedule("S2"), fig1.spec)
        witness = rsg.equivalent_relatively_serial_schedule()
        assert is_relatively_serial(witness, fig1.spec)

    def test_extracted_schedule_is_conflict_equivalent(self, fig1):
        rsg = RelativeSerializationGraph(fig1.schedule("S2"), fig1.spec)
        witness = rsg.equivalent_relatively_serial_schedule()
        assert conflict_equivalent(witness, fig1.schedule("S2"))

    def test_extracted_schedule_matches_paper_srs(self, fig1):
        # The tie-break by original position recovers the paper's own
        # witness Srs for its example S2.
        rsg = RelativeSerializationGraph(fig1.schedule("S2"), fig1.spec)
        assert (
            rsg.equivalent_relatively_serial_schedule()
            == fig1.schedule("Srs")
        )

    def test_extraction_raises_with_cycle_witness(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "r[x] w[x]"),
        ]
        s = Schedule.from_notation(txs, "r1[x] r2[x] w1[x] w2[x]")
        rsg = RelativeSerializationGraph(s, absolute_spec(txs))
        with pytest.raises(CycleError) as excinfo:
            rsg.equivalent_relatively_serial_schedule()
        assert excinfo.value.cycle

    def test_extraction_of_relatively_serial_input_is_stable(self, fig1):
        # A schedule that is already relatively serial sorts to itself
        # when ties break by original position.
        rsg = RelativeSerializationGraph(fig1.schedule("Srs"), fig1.spec)
        assert rsg.equivalent_relatively_serial_schedule() == fig1.schedule(
            "Srs"
        )


class TestAblationSwitches:
    def test_without_b_arcs_no_pull_backward(self, fig3):
        rsg = RelativeSerializationGraph(
            fig3.schedule("S2"), fig3.spec, include_b_arcs=False
        )
        assert rsg.arcs(ArcKind.PULL_BACKWARD) == []
        assert rsg.arcs(ArcKind.PUSH_FORWARD) != []

    def test_without_f_arcs_no_push_forward(self, fig3):
        rsg = RelativeSerializationGraph(
            fig3.schedule("S2"), fig3.spec, include_f_arcs=False
        )
        assert rsg.arcs(ArcKind.PUSH_FORWARD) == []

    def test_direct_dependencies_accept_figure2_schedule(self, fig2):
        # With direct-only dependencies Figure 2's S1 looks fine; the
        # transitive closure is what rejects it (module docstring of
        # repro.core.dependency).
        full = RelativeSerializationGraph(fig2.schedule("S1"), fig2.spec)
        direct = RelativeSerializationGraph(
            fig2.schedule("S1"),
            fig2.spec,
            transitive_dependencies=False,
        )
        assert len(full.arcs(ArcKind.DEPENDENCY)) > len(
            direct.arcs(ArcKind.DEPENDENCY)
        )
