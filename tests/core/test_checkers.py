"""Unit tests for the definition-based checkers (Definitions 1 and 2)."""

import pytest

from repro.core.checkers import (
    interleaved_operations,
    is_relatively_atomic,
    is_relatively_serial,
    is_serial,
    relative_serial_violations,
)
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.specs.builders import absolute_spec, finest_spec


class TestIsSerial:
    def test_serial_schedule(self, fig1):
        serial = Schedule.serial(list(fig1.transactions))
        assert is_serial(serial)

    def test_interleaved_schedule(self, fig1):
        assert not is_serial(fig1.schedule("Sra"))


class TestInterleavedOperations:
    def test_no_interleavings_in_serial_schedule(self, fig1):
        serial = Schedule.serial(list(fig1.transactions))
        assert list(interleaved_operations(serial, fig1.spec)) == []

    def test_detects_operation_inside_foreign_unit(self, fig1):
        # In S2, w1[x] sits inside AtomicUnit(2, T2, T1) = [w2[y] r2[x]].
        hits = list(interleaved_operations(fig1.schedule("S2"), fig1.spec))
        labels = {(op.label, unit.tx) for op, unit in hits}
        assert ("w1[x]", 2) in labels

    def test_interleaving_requires_enclosure(self, fig1):
        # Sra has operations between foreign units but never inside one.
        assert list(interleaved_operations(fig1.schedule("Sra"), fig1.spec)) == []

    def test_singleton_units_cannot_enclose(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[y]"),
            Transaction.from_notation(2, "w[z]"),
        ]
        s = Schedule.from_notation(txs, "w1[x] w2[z] w1[y]")
        spec = finest_spec(txs)
        assert list(interleaved_operations(s, spec)) == []


class TestRelativelyAtomic:
    def test_paper_sra_is_relatively_atomic(self, fig1):
        assert is_relatively_atomic(fig1.schedule("Sra"), fig1.spec)

    def test_paper_srs_is_not_relatively_atomic(self, fig1):
        assert not is_relatively_atomic(fig1.schedule("Srs"), fig1.spec)

    def test_under_absolute_spec_equals_serial(self, fig1):
        txs = list(fig1.transactions)
        spec = absolute_spec(txs)
        for name in ("Sra", "Srs", "S2"):
            schedule = fig1.schedule(name)
            assert is_relatively_atomic(schedule, spec) == schedule.is_serial
        serial = Schedule.serial(txs)
        assert is_relatively_atomic(serial, spec)

    def test_under_finest_spec_everything_is_atomic(self, fig1):
        spec = finest_spec(list(fig1.transactions))
        for name in ("Sra", "Srs", "S2"):
            assert is_relatively_atomic(fig1.schedule(name), spec)


class TestRelativelySerial:
    def test_paper_srs_is_relatively_serial(self, fig1):
        assert is_relatively_serial(fig1.schedule("Srs"), fig1.spec)

    def test_paper_s2_is_not_relatively_serial(self, fig1):
        assert not is_relatively_serial(fig1.schedule("S2"), fig1.spec)

    def test_violation_triples_name_the_culprits(self, fig1):
        violations = list(
            relative_serial_violations(fig1.schedule("S2"), fig1.spec)
        )
        assert violations
        # The paper: w1[x] is interleaved with AtomicUnit(2, T2, T1) and
        # r2[x] depends on w1[x].
        described = {
            (op.label, unit.tx, unit_op.label)
            for op, unit, unit_op in violations
        }
        assert ("w1[x]", 2, "r2[x]") in described

    def test_relatively_atomic_implies_relatively_serial(self, fig1):
        assert is_relatively_serial(fig1.schedule("Sra"), fig1.spec)

    def test_figure2_s1_rejected_by_transitive_dependencies(self, fig2):
        assert not is_relatively_serial(fig2.schedule("S1"), fig2.spec)

    def test_figure2_s1_accepted_with_direct_dependencies_only(self, fig2):
        from repro.core.dependency import DependencyRelation

        direct = DependencyRelation(fig2.schedule("S1"), transitive=False)
        assert is_relatively_serial(fig2.schedule("S1"), fig2.spec, direct)

    def test_figure4_s_is_relatively_serial(self, fig4):
        assert is_relatively_serial(fig4.schedule("S"), fig4.spec)

    def test_dependency_free_interleaving_is_allowed(self):
        # T2's write touches an object T1 never uses, so it may sit
        # inside T1's absolute unit.
        txs = [
            Transaction.from_notation(1, "w[x] r[x]"),
            Transaction.from_notation(2, "w[y]"),
        ]
        s = Schedule.from_notation(txs, "w1[x] w2[y] r1[x]")
        spec = absolute_spec(txs)
        assert not is_relatively_atomic(s, spec)
        assert is_relatively_serial(s, spec)
