"""Unit tests for schedules, conflicts, and conflict equivalence."""

import pytest

from repro.core.schedules import (
    Schedule,
    conflict_equivalent,
    conflict_pairs,
    conflicts,
)
from repro.core.transactions import Transaction
from repro.errors import InvalidScheduleError


@pytest.fixture()
def txs():
    return [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "w[x] r[y]"),
    ]


class TestConstruction:
    def test_from_notation(self, txs):
        s = Schedule.from_notation(txs, "r1[x] w2[x] w1[x] r2[y]")
        assert len(s) == 4
        assert str(s) == "r1[x] w2[x] w1[x] r2[y]"

    def test_rejects_missing_operation(self, txs):
        with pytest.raises(InvalidScheduleError):
            Schedule(txs, [txs[0][0], txs[0][1], txs[1][0]])

    def test_rejects_duplicate_operation(self, txs):
        with pytest.raises(InvalidScheduleError):
            Schedule(txs, [txs[0][0], txs[0][0], txs[0][1], txs[1][0]])

    def test_rejects_program_order_violation(self, txs):
        with pytest.raises(InvalidScheduleError):
            Schedule(txs, [txs[0][1], txs[0][0], txs[1][0], txs[1][1]])

    def test_rejects_foreign_operation(self, txs):
        alien = Transaction.from_notation(3, "r[z]")
        with pytest.raises(InvalidScheduleError):
            Schedule(txs, [alien[0]] + list(txs[0]) + list(txs[1]))

    def test_from_notation_rejects_unknown_transaction(self, txs):
        with pytest.raises(InvalidScheduleError):
            Schedule.from_notation(txs, "r9[x] r1[x] w1[x] w2[x] r2[y]")

    def test_from_notation_rejects_wrong_next_operation(self, txs):
        with pytest.raises(InvalidScheduleError):
            # T1's first op is r[x], not w[x].
            Schedule.from_notation(txs, "w1[x] r1[x] w2[x] r2[y]")

    def test_from_notation_requires_transaction_ids(self, txs):
        with pytest.raises(InvalidScheduleError):
            Schedule.from_notation(txs, "r[x] w[x] w[x] r[y]")

    def test_serial_builder_default_order(self, txs):
        s = Schedule.serial(txs)
        assert str(s) == "r1[x] w1[x] w2[x] r2[y]"
        assert s.is_serial

    def test_serial_builder_custom_order(self, txs):
        s = Schedule.serial(txs, [2, 1])
        assert str(s) == "w2[x] r2[y] r1[x] w1[x]"

    def test_serial_builder_rejects_unknown_id(self, txs):
        with pytest.raises(InvalidScheduleError):
            Schedule.serial(txs, [1, 3])


class TestQueries:
    def test_position_and_precedes(self, txs):
        s = Schedule.from_notation(txs, "r1[x] w2[x] w1[x] r2[y]")
        assert s.position(txs[0][0]) == 0
        assert s.precedes(txs[1][0], txs[0][1])
        assert not s.precedes(txs[0][1], txs[1][0])

    def test_position_of_foreign_operation_raises(self, txs):
        s = Schedule.serial(txs)
        alien = Transaction.from_notation(3, "r[z]")
        with pytest.raises(InvalidScheduleError):
            s.position(alien[0])

    def test_projection_returns_program(self, txs):
        s = Schedule.from_notation(txs, "r1[x] w2[x] w1[x] r2[y]")
        assert [op.label for op in s.projection(1)] == ["r1[x]", "w1[x]"]

    def test_is_serial_detects_interleaving(self, txs):
        interleaved = Schedule.from_notation(txs, "r1[x] w2[x] w1[x] r2[y]")
        assert not interleaved.is_serial

    def test_reordered_keeps_transaction_set(self, txs):
        s = Schedule.serial(txs)
        r = s.reordered(
            [txs[0][0], txs[1][0], txs[0][1], txs[1][1]]
        )
        assert set(r.operations) == set(s.operations)

    def test_equality_is_order_sensitive(self, txs):
        a = Schedule.serial(txs, [1, 2])
        b = Schedule.serial(txs, [2, 1])
        assert a != b
        assert a == Schedule.serial(txs, [1, 2])


class TestConflicts:
    def test_conflict_pairs_ordered_by_schedule(self, txs):
        s = Schedule.from_notation(txs, "r1[x] w2[x] w1[x] r2[y]")
        pairs = {
            (a.label, b.label) for a, b in conflict_pairs(s)
        }
        assert pairs == {
            ("r1[x]", "w2[x]"),
            ("w2[x]", "w1[x]"),
        }

    def test_conflicts_function_matches_method(self, txs):
        assert conflicts(txs[0][0], txs[1][0])
        assert not conflicts(txs[0][0], txs[1][1])


class TestConflictEquivalence:
    def test_reflexive(self, txs):
        s = Schedule.serial(txs)
        assert conflict_equivalent(s, s)

    def test_swapping_nonconflicting_ops_preserves_equivalence(self, txs):
        # r2[y] conflicts with nothing of T1, so it may slide across
        # T1's operations without breaking equivalence.
        a = Schedule.from_notation(txs, "w2[x] r2[y] r1[x] w1[x]")
        b = Schedule.from_notation(txs, "w2[x] r1[x] r2[y] w1[x]")
        assert conflict_equivalent(a, b)

    def test_equivalence_detects_conflict_swap(self, txs):
        a = Schedule.from_notation(txs, "r1[x] w1[x] w2[x] r2[y]")
        b = Schedule.from_notation(txs, "w2[x] r2[y] r1[x] w1[x]")
        assert not conflict_equivalent(a, b)

    def test_equivalent_interleavings(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[y]"),
            Transaction.from_notation(2, "r[a] w[b]"),
        ]
        a = Schedule.from_notation(txs, "r1[x] r2[a] w1[y] w2[b]")
        b = Schedule.from_notation(txs, "r2[a] w2[b] r1[x] w1[y]")
        assert conflict_equivalent(a, b)

    def test_different_operation_sets_not_comparable(self, txs):
        other = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(3, "w[x] r[y]"),
        ]
        a = Schedule.serial(txs)
        b = Schedule.serial(other)
        assert not conflict_equivalent(a, b)

    def test_paper_s2_equivalent_to_srs(self, fig1):
        assert conflict_equivalent(fig1.schedule("S2"), fig1.schedule("Srs"))
