"""Unit tests for the transaction model."""

import pytest

from repro.core.operations import read, write
from repro.core.transactions import Transaction, as_transaction_map
from repro.errors import InvalidTransactionError


class TestConstruction:
    def test_binds_operations_in_order(self):
        tx = Transaction(1, [read("x"), write("x")])
        assert [op.index for op in tx] == [0, 1]
        assert all(op.tx == 1 for op in tx)

    def test_accepts_notation_strings(self):
        tx = Transaction(2, ["r[x]", "w[y]"])
        assert tx[0].label == "r2[x]"
        assert tx[1].label == "w2[y]"

    def test_from_notation(self):
        tx = Transaction.from_notation(1, "r[x] w[x] w[z] r[y]")
        assert len(tx) == 4
        assert str(tx) == "T1 = r1[x] w1[x] w1[z] r1[y]"

    def test_from_notation_accepts_matching_ids(self):
        tx = Transaction.from_notation(3, "r3[x] w3[y]")
        assert tx.tx_id == 3

    def test_rejects_empty(self):
        with pytest.raises(InvalidTransactionError):
            Transaction(1, [])

    def test_rejects_empty_notation(self):
        with pytest.raises(InvalidTransactionError):
            Transaction.from_notation(1, "   ")

    def test_rejects_nonpositive_id(self):
        with pytest.raises(InvalidTransactionError):
            Transaction(0, [read("x")])

    def test_rejects_operation_of_other_transaction(self):
        with pytest.raises(InvalidTransactionError):
            Transaction(1, ["r2[x]"])

    def test_rebinds_own_prebound_operations(self):
        original = Transaction(1, [read("x"), write("y")])
        clone = Transaction(1, list(original.operations))
        assert clone == original


class TestAccessors:
    def test_read_and_write_sets(self):
        tx = Transaction.from_notation(1, "r[x] w[y] r[z] w[x]")
        assert tx.read_set == {"x", "z"}
        assert tx.write_set == {"y", "x"}
        assert tx.objects == {"x", "y", "z"}

    def test_operation_lookup(self):
        tx = Transaction.from_notation(1, "r[x] w[y]")
        assert tx.operation(1).label == "w1[y]"
        assert tx[0] is tx.operation(0)

    def test_equality_and_hash(self):
        a = Transaction.from_notation(1, "r[x] w[x]")
        b = Transaction.from_notation(1, "r[x] w[x]")
        c = Transaction.from_notation(1, "w[x] r[x]")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_iteration_order_is_program_order(self):
        tx = Transaction.from_notation(1, "r[a] r[b] r[c]")
        assert [op.obj for op in tx] == ["a", "b", "c"]


class TestTransactionMap:
    def test_indexes_by_id(self):
        txs = [
            Transaction.from_notation(2, "r[x]"),
            Transaction.from_notation(1, "w[x]"),
        ]
        mapping = as_transaction_map(txs)
        assert set(mapping) == {1, 2}

    def test_rejects_duplicate_ids(self):
        txs = [
            Transaction.from_notation(1, "r[x]"),
            Transaction.from_notation(1, "w[x]"),
        ]
        with pytest.raises(InvalidTransactionError):
            as_transaction_map(txs)
