"""Unit tests for the operation model and its notation."""

import pytest

from repro.core.operations import Operation, OpType, parse_operation, read, write
from repro.errors import NotationError


class TestConstruction:
    def test_read_factory_is_unbound(self):
        op = read("x")
        assert op.op_type is OpType.READ
        assert op.obj == "x"
        assert op.tx is None
        assert op.index is None
        assert not op.is_bound

    def test_write_factory(self):
        op = write("balance")
        assert op.is_write
        assert not op.is_read
        assert op.obj == "balance"

    def test_bound_to_produces_new_bound_operation(self):
        op = read("x").bound_to(3, 7)
        assert op.is_bound
        assert op.tx == 3
        assert op.index == 7

    def test_operations_are_immutable(self):
        op = read("x")
        with pytest.raises(AttributeError):
            op.obj = "y"

    def test_bound_operations_are_hashable_by_identity_fields(self):
        a = read("x").bound_to(1, 0)
        b = read("x").bound_to(1, 0)
        c = read("x").bound_to(1, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestConflicts:
    def test_write_write_same_object_conflicts(self):
        a = write("x").bound_to(1, 0)
        b = write("x").bound_to(2, 0)
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_read_write_same_object_conflicts(self):
        a = read("x").bound_to(1, 0)
        b = write("x").bound_to(2, 0)
        assert a.conflicts_with(b)

    def test_read_read_never_conflicts(self):
        a = read("x").bound_to(1, 0)
        b = read("x").bound_to(2, 0)
        assert not a.conflicts_with(b)

    def test_different_objects_never_conflict(self):
        a = write("x").bound_to(1, 0)
        b = write("y").bound_to(2, 0)
        assert not a.conflicts_with(b)

    def test_same_transaction_never_conflicts(self):
        a = write("x").bound_to(1, 0)
        b = write("x").bound_to(1, 1)
        assert not a.conflicts_with(b)


class TestNotation:
    def test_label_matches_paper_notation(self):
        assert read("x").bound_to(1, 0).label == "r1[x]"
        assert write("z").bound_to(12, 3).label == "w12[z]"

    def test_unbound_label_omits_transaction(self):
        assert read("x").label == "r[x]"

    def test_parse_bound_read(self):
        op = parse_operation("r1[x]")
        assert op.op_type is OpType.READ
        assert op.tx == 1
        assert op.obj == "x"

    def test_parse_unbound_write(self):
        op = parse_operation("w[account7]")
        assert op.is_write
        assert op.tx is None
        assert op.obj == "account7"

    def test_parse_accepts_surrounding_whitespace(self):
        assert parse_operation("  w3[y] ").label == "w3[y]"

    @pytest.mark.parametrize(
        "bad",
        ["x[r]", "r1", "r1[]", "q1[x]", "r1[x", "r 1[x]", "r1[x y]", ""],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(NotationError):
            parse_operation(bad)

    def test_parse_roundtrips_label(self):
        for text in ["r1[x]", "w2[y]", "r[obj]"]:
            assert parse_operation(text).label == text
