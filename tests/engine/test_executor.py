"""Unit tests for the schedule executor."""

import pytest

from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.engine.executor import ScheduleExecutor, Semantics
from repro.errors import EngineError


@pytest.fixture()
def transfer_txs():
    return [
        Transaction.from_notation(1, "r[a] r[b] w[a] w[b]"),  # move 10 a->b
        Transaction.from_notation(2, "r[a] r[b]"),  # audit
    ]


@pytest.fixture()
def transfer_semantics():
    semantics = Semantics()
    semantics.set_effect(1, 2, lambda current, reads: reads["a"] - 10)
    semantics.set_effect(1, 3, lambda current, reads: reads["b"] + 10)
    return semantics


class TestDefaultSemantics:
    def test_writes_tagged_with_writer(self):
        txs = [Transaction.from_notation(1, "w[x]")]
        trace = ScheduleExecutor({"x": 0}).run(Schedule.serial(txs))
        assert trace.final_state["x"] == "T1.0"

    def test_reads_recorded(self):
        txs = [Transaction.from_notation(1, "r[x]")]
        trace = ScheduleExecutor({"x": 42}).run(Schedule.serial(txs))
        assert trace.read_value(txs[0][0]) == 42

    def test_read_value_of_write_raises(self):
        txs = [Transaction.from_notation(1, "w[x]")]
        trace = ScheduleExecutor({"x": 0}).run(Schedule.serial(txs))
        with pytest.raises(EngineError):
            trace.read_value(txs[0][0])


class TestTransferSemantics:
    def test_serial_audit_sees_consistent_total(
        self, transfer_txs, transfer_semantics
    ):
        schedule = Schedule.serial(transfer_txs)
        trace = ScheduleExecutor(
            {"a": 100, "b": 100}, transfer_semantics
        ).run(schedule)
        assert trace.final_state == {"a": 90, "b": 110}
        audit_view = trace.transaction_view(2)
        assert audit_view["a"] + audit_view["b"] == 200

    def test_interleaved_audit_sees_torn_total(
        self, transfer_txs, transfer_semantics
    ):
        # Audit reads a after the debit but b before the credit.
        schedule = Schedule.from_notation(
            transfer_txs, "r1[a] r1[b] w1[a] r2[a] r2[b] w1[b]"
        )
        trace = ScheduleExecutor(
            {"a": 100, "b": 100}, transfer_semantics
        ).run(schedule)
        audit_view = trace.transaction_view(2)
        assert audit_view["a"] + audit_view["b"] == 190  # torn read

    def test_writes_recorded_per_operation(
        self, transfer_txs, transfer_semantics
    ):
        schedule = Schedule.serial(transfer_txs)
        trace = ScheduleExecutor(
            {"a": 100, "b": 100}, transfer_semantics
        ).run(schedule)
        t1 = transfer_txs[0]
        assert trace.writes[t1[2]] == 90
        assert trace.writes[t1[3]] == 110


class TestTraceBookkeeping:
    def test_reads_by_tx_keeps_latest_value(self):
        txs = [
            Transaction.from_notation(1, "r[x] r[x]"),
            Transaction.from_notation(2, "w[x]"),
        ]
        semantics = Semantics({(2, 0): lambda current, reads: 7})
        schedule = Schedule.from_notation(txs, "r1[x] w2[x] r1[x]")
        trace = ScheduleExecutor({"x": 1}, semantics).run(schedule)
        assert trace.transaction_view(1) == {"x": 7}
        first_read, second_read = txs[0][0], txs[0][1]
        assert trace.reads[first_read] == 1
        assert trace.reads[second_read] == 7

    def test_transaction_view_of_writer_only_tx_is_empty(self):
        txs = [Transaction.from_notation(1, "w[x]")]
        trace = ScheduleExecutor({"x": 0}).run(Schedule.serial(txs))
        assert trace.transaction_view(1) == {}

    def test_same_schedule_object_returned(self):
        txs = [Transaction.from_notation(1, "r[x]")]
        schedule = Schedule.serial(txs)
        trace = ScheduleExecutor({"x": 0}).run(schedule)
        assert trace.schedule is schedule
