"""Unit tests for the transactional key-value store."""

import pytest

from repro.engine.kvstore import KVStore
from repro.errors import EngineError


class TestLifecycle:
    def test_begin_commit(self):
        store = KVStore({"x": 1})
        store.begin(1)
        store.write(1, "x", 2)
        store.commit(1)
        assert store.peek("x") == 2
        assert store.open_transactions == frozenset()

    def test_double_begin_rejected(self):
        store = KVStore()
        store.begin(1)
        with pytest.raises(EngineError):
            store.begin(1)

    def test_commit_without_begin_rejected(self):
        with pytest.raises(EngineError):
            KVStore().commit(1)

    def test_operations_require_open_transaction(self):
        store = KVStore({"x": 1})
        with pytest.raises(EngineError):
            store.read(1, "x")
        with pytest.raises(EngineError):
            store.write(1, "x", 2)


class TestAbort:
    def test_abort_restores_previous_values(self):
        store = KVStore({"x": 1, "y": 10})
        store.begin(1)
        store.write(1, "x", 2)
        store.write(1, "y", 20)
        store.abort(1)
        assert store.peek("x") == 1
        assert store.peek("y") == 10

    def test_abort_removes_created_objects(self):
        store = KVStore()
        store.begin(1)
        store.write(1, "new", 5)
        assert "new" in store
        store.abort(1)
        assert "new" not in store

    def test_abort_undoes_in_reverse_order(self):
        store = KVStore({"x": 1})
        store.begin(1)
        store.write(1, "x", 2)
        store.write(1, "x", 3)
        store.abort(1)
        assert store.peek("x") == 1

    def test_abort_restores_versions(self):
        store = KVStore({"x": 1})
        store.begin(1)
        store.write(1, "x", 2)
        assert store.version("x") == 1
        store.abort(1)
        assert store.version("x") == 0

    def test_interleaved_transactions_abort_independently(self):
        store = KVStore({"x": 1, "y": 1})
        store.begin(1)
        store.begin(2)
        store.write(1, "x", 2)
        store.write(2, "y", 2)
        store.abort(1)
        store.commit(2)
        assert store.peek("x") == 1
        assert store.peek("y") == 2


class TestAccess:
    def test_read_sees_own_uncommitted_write(self):
        store = KVStore({"x": 1})
        store.begin(1)
        store.write(1, "x", 99)
        assert store.read(1, "x") == 99

    def test_read_sees_other_uncommitted_write(self):
        # The store does no isolation: ordering is the scheduler's job.
        store = KVStore({"x": 1})
        store.begin(1)
        store.begin(2)
        store.write(1, "x", 7)
        assert store.read(2, "x") == 7

    def test_read_missing_object_raises(self):
        store = KVStore()
        store.begin(1)
        with pytest.raises(EngineError):
            store.read(1, "ghost")

    def test_snapshot_is_a_copy(self):
        store = KVStore({"x": 1})
        snap = store.snapshot()
        snap["x"] = 99
        assert store.peek("x") == 1

    def test_versions_count_writes(self):
        store = KVStore({"x": 0})
        store.begin(1)
        store.write(1, "x", 1)
        store.write(1, "x", 2)
        store.commit(1)
        assert store.version("x") == 2

    def test_objects_and_len(self):
        store = KVStore({"x": 1, "y": 2})
        assert store.objects() == {"x", "y"}
        assert len(store) == 2
