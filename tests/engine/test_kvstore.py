"""Unit tests for the transactional key-value store."""

import pytest

from repro.engine.kvstore import KVStore
from repro.errors import EngineError


class TestLifecycle:
    def test_begin_commit(self):
        store = KVStore({"x": 1})
        store.begin(1)
        store.write(1, "x", 2)
        store.commit(1)
        assert store.peek("x") == 2
        assert store.open_transactions == frozenset()

    def test_double_begin_rejected(self):
        store = KVStore()
        store.begin(1)
        with pytest.raises(EngineError):
            store.begin(1)

    def test_commit_without_begin_rejected(self):
        with pytest.raises(EngineError):
            KVStore().commit(1)

    def test_operations_require_open_transaction(self):
        store = KVStore({"x": 1})
        with pytest.raises(EngineError):
            store.read(1, "x")
        with pytest.raises(EngineError):
            store.write(1, "x", 2)


class TestAbort:
    def test_abort_restores_previous_values(self):
        store = KVStore({"x": 1, "y": 10})
        store.begin(1)
        store.write(1, "x", 2)
        store.write(1, "y", 20)
        store.abort(1)
        assert store.peek("x") == 1
        assert store.peek("y") == 10

    def test_abort_removes_created_objects(self):
        store = KVStore()
        store.begin(1)
        store.write(1, "new", 5)
        assert "new" in store
        store.abort(1)
        assert "new" not in store

    def test_abort_undoes_in_reverse_order(self):
        store = KVStore({"x": 1})
        store.begin(1)
        store.write(1, "x", 2)
        store.write(1, "x", 3)
        store.abort(1)
        assert store.peek("x") == 1

    def test_abort_restores_versions(self):
        store = KVStore({"x": 1})
        store.begin(1)
        store.write(1, "x", 2)
        assert store.version("x") == 1
        store.abort(1)
        assert store.version("x") == 0

    def test_interleaved_transactions_abort_independently(self):
        store = KVStore({"x": 1, "y": 1})
        store.begin(1)
        store.begin(2)
        store.write(1, "x", 2)
        store.write(2, "y", 2)
        store.abort(1)
        store.commit(2)
        assert store.peek("x") == 1
        assert store.peek("y") == 2


class TestAccess:
    def test_read_sees_own_uncommitted_write(self):
        store = KVStore({"x": 1})
        store.begin(1)
        store.write(1, "x", 99)
        assert store.read(1, "x") == 99

    def test_read_sees_other_uncommitted_write(self):
        # The store does no isolation: ordering is the scheduler's job.
        store = KVStore({"x": 1})
        store.begin(1)
        store.begin(2)
        store.write(1, "x", 7)
        assert store.read(2, "x") == 7

    def test_read_missing_object_raises(self):
        store = KVStore()
        store.begin(1)
        with pytest.raises(EngineError):
            store.read(1, "ghost")

    def test_snapshot_is_a_copy(self):
        store = KVStore({"x": 1})
        snap = store.snapshot()
        snap["x"] = 99
        assert store.peek("x") == 1

    def test_versions_count_writes(self):
        store = KVStore({"x": 0})
        store.begin(1)
        store.write(1, "x", 1)
        store.write(1, "x", 2)
        store.commit(1)
        assert store.version("x") == 2

    def test_objects_and_len(self):
        store = KVStore({"x": 1, "y": 2})
        assert store.objects() == {"x", "y"}
        assert len(store) == 2


class TestAbortBeforeImages:
    def test_repeated_writes_to_the_same_key_restore_the_original(self):
        store = KVStore({"x": "init"})
        store.begin(1)
        for value in ("a", "b", "c", "d"):
            store.write(1, "x", value)
        assert store.peek("x") == "d"
        store.abort(1)
        assert store.peek("x") == "init"
        assert store.version("x") == 0

    def test_abort_of_created_object_removes_it(self):
        store = KVStore()
        store.begin(1)
        store.write(1, "fresh", 1)
        store.write(1, "fresh", 2)
        store.abort(1)
        assert "fresh" not in store
        assert store.version("fresh") == 0

    def test_interleaved_aborts_unwind_in_any_order(self):
        store = KVStore({"x": "init"})
        store.begin(1)
        store.begin(2)
        store.write(1, "x", "T1")
        store.write(2, "x", "T2")
        # Abort the *earlier* writer first: its value was already buried
        # by T2's write, so the store must splice, not restore.
        store.abort(1)
        assert store.peek("x") == "T2"
        store.abort(2)
        assert store.peek("x") == "init"

    def test_commit_supersedes_earlier_uncommitted_writes(self):
        # Non-strict history: T2 overwrites T1's dirty value and commits
        # first.  T1's later abort must NOT clobber the committed value.
        store = KVStore({"x": "init"})
        store.begin(1)
        store.begin(2)
        store.write(1, "x", "T1")
        store.write(2, "x", "T2")
        store.commit(2)
        store.abort(1)
        assert store.peek("x") == "T2"

    def test_commit_supersession_spares_other_objects(self):
        store = KVStore({"x": "init", "y": "init"})
        store.begin(1)
        store.begin(2)
        store.write(1, "x", "T1x")
        store.write(1, "y", "T1y")
        store.write(2, "x", "T2x")
        store.commit(2)
        store.abort(1)  # x superseded, y rolls back normally
        assert store.peek("x") == "T2x"
        assert store.peek("y") == "init"


class TestCrashRecovery:
    def test_crash_blocks_transactional_access(self):
        from repro.errors import CrashedStoreError

        store = KVStore({"x": 1})
        store.begin(1)
        store.crash()
        assert store.crashed
        with pytest.raises(CrashedStoreError):
            store.read(1, "x")
        with pytest.raises(CrashedStoreError):
            store.write(1, "x", 2)
        with pytest.raises(CrashedStoreError):
            store.commit(1)
        # Diagnostics stay available on a downed store.
        assert store.peek("x") == 1
        assert store.snapshot() == {"x": 1}

    def test_recover_rolls_back_every_open_transaction(self):
        store = KVStore({"x": "init", "y": "init"})
        store.begin(1)
        store.begin(2)
        store.write(1, "x", "T1")
        store.write(2, "y", "T2")
        store.crash()
        rolled_back = store.recover()
        assert rolled_back == frozenset({1, 2})
        assert not store.crashed
        assert store.snapshot() == {"x": "init", "y": "init"}
        assert store.open_transactions == frozenset()
        assert store.wal_records() == ()

    def test_committed_writes_survive_the_crash(self):
        store = KVStore({"x": "init", "y": "init"})
        store.begin(1)
        store.write(1, "x", "kept")
        store.commit(1)
        store.begin(2)
        store.write(2, "y", "dirty")
        store.crash()
        store.recover()
        assert store.snapshot() == {"x": "kept", "y": "init"}

    def test_interleaved_same_object_writes_recover_to_original(self):
        store = KVStore({"x": "init"})
        store.begin(1)
        store.begin(2)
        store.write(1, "x", "T1a")
        store.write(2, "x", "T2a")
        store.write(1, "x", "T1b")
        store.crash()
        store.recover()
        assert store.peek("x") == "init"

    def test_commit_then_crash_supersedes_buried_write(self):
        # Same supersession rule on the recovery path: T2's committed
        # value must survive even though T1's older dirty write is still
        # in the WAL at crash time.
        store = KVStore({"x": "init"})
        store.begin(1)
        store.begin(2)
        store.write(1, "x", "T1")
        store.write(2, "x", "T2")
        store.commit(2)
        store.crash()
        store.recover()
        assert store.peek("x") == "T2"

    def test_recover_is_idempotent_and_works_when_healthy(self):
        store = KVStore({"x": 1})
        assert store.recover() == frozenset()
        store.begin(1)
        store.write(1, "x", 2)
        store.crash()
        store.recover()
        assert store.recover() == frozenset()
        assert store.peek("x") == 1

    def test_store_usable_again_after_recovery(self):
        store = KVStore({"x": "init"})
        store.begin(1)
        store.write(1, "x", "lost")
        store.crash()
        store.recover()
        store.begin(1)  # same id is fine: the old incarnation is gone
        store.write(1, "x", "kept")
        store.commit(1)
        assert store.peek("x") == "kept"


class TestRecoveryEdgeCases:
    """Corner cases the service drain/chaos paths lean on."""

    def test_double_crash_recover_cycles(self):
        store = KVStore({"x": "init"})
        for generation in range(1, 4):
            store.begin(generation)
            store.write(generation, "x", f"dirty-{generation}")
            store.crash()
            assert store.recover() == frozenset({generation})
            assert store.peek("x") == "init"
        assert store.wal_size() == 0
        assert not store.crashed

    def test_crash_while_already_crashed_is_idempotent(self):
        store = KVStore({"x": 1})
        store.begin(1)
        store.write(1, "x", 2)
        store.crash()
        store.crash()  # a second failure while down changes nothing
        assert store.crashed
        assert store.recover() == frozenset({1})
        assert store.peek("x") == 1

    def test_recover_with_an_empty_undo_log(self):
        # A transaction that began but never wrote leaves no WAL
        # records; recovery must still close it out.
        store = KVStore({"x": 1})
        store.begin(1)
        store.crash()
        assert store.recover() == frozenset({1})
        assert store.open_transactions == frozenset()
        assert store.snapshot() == {"x": 1}

    def test_recover_on_an_absent_undo_log(self):
        # No open transactions at all: recover clears the crash flag
        # and reports nothing rolled back.
        store = KVStore({"x": 1})
        store.crash()
        assert store.recover() == frozenset()
        assert not store.crashed
        store.begin(1)
        store.write(1, "x", 2)
        store.commit(1)
        assert store.peek("x") == 2

    def test_wal_size_tracks_live_records(self):
        store = KVStore({"x": 0, "y": 0})
        assert store.wal_size() == 0
        store.begin(1)
        assert store.wal_size() == 0  # begin alone writes nothing
        store.write(1, "x", 1)
        store.write(1, "y", 1)
        store.begin(2)
        store.write(2, "x", 2)
        assert store.wal_size() == 3
        store.commit(1)
        assert store.wal_size() == 1  # only T2's record remains
        store.abort(2)
        assert store.wal_size() == 0

    def test_wal_size_zero_after_recovery(self):
        store = KVStore({"x": 0})
        store.begin(1)
        store.write(1, "x", 1)
        store.write(1, "x", 2)
        store.crash()
        store.recover()
        assert store.wal_size() == 0
