"""Unit tests for the digraph substrate."""

import pytest

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph


class TestMutation:
    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node("a")
        g.add_node("a")
        assert g.node_count == 1

    def test_add_edge_adds_endpoints(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert g.has_node("a") and g.has_node("b")
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_parallel_edges_collapse_and_merge_labels(self):
        g = DiGraph()
        g.add_edge("a", "b", label="D")
        g.add_edge("a", "b", label="F")
        assert g.edge_count == 1
        assert g.edge_labels("a", "b") == {"D", "F"}

    def test_remove_node_drops_incident_edges(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        g.remove_node("b")
        assert not g.has_node("b")
        assert g.edges() == [("c", "a")]

    def test_remove_missing_node_raises(self):
        with pytest.raises(GraphError):
            DiGraph().remove_node("a")

    def test_remove_edge(self):
        g = DiGraph.from_edges([("a", "b")])
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.has_node("a") and g.has_node("b")

    def test_remove_missing_edge_raises(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(GraphError):
            g.remove_edge("b", "a")

    def test_self_loop_allowed(self):
        g = DiGraph()
        g.add_edge("a", "a")
        assert g.has_edge("a", "a")


class TestQueries:
    def test_successors_and_predecessors(self):
        g = DiGraph.from_edges([("a", "b"), ("a", "c"), ("b", "c")])
        assert g.successors("a") == {"b", "c"}
        assert g.predecessors("c") == {"a", "b"}
        assert g.out_degree("a") == 2
        assert g.in_degree("c") == 2

    def test_successors_of_missing_node_raises(self):
        with pytest.raises(GraphError):
            DiGraph().successors("a")

    def test_edge_labels_of_missing_edge_raises(self):
        with pytest.raises(GraphError):
            DiGraph.from_edges([("a", "b")]).edge_labels("b", "a")

    def test_unlabelled_edge_has_empty_label_set(self):
        g = DiGraph.from_edges([("a", "b")])
        assert g.edge_labels("a", "b") == frozenset()

    def test_labelled_edges_lists_everything(self):
        g = DiGraph()
        g.add_edge("a", "b", label=1)
        g.add_edge("b", "c")
        entries = dict(
            ((src, dst), labels) for src, dst, labels in g.labelled_edges()
        )
        assert entries[("a", "b")] == {1}
        assert entries[("b", "c")] == frozenset()

    def test_copy_is_independent(self):
        g = DiGraph.from_edges([("a", "b")])
        h = g.copy()
        h.add_edge("b", "c")
        assert not g.has_node("c")
        h.remove_edge("a", "b")
        assert g.has_edge("a", "b")

    def test_dunder_conveniences(self):
        g = DiGraph.from_edges([("a", "b")])
        assert "a" in g
        assert len(g) == 2
        assert set(iter(g)) == {"a", "b"}
        assert "DiGraph" in repr(g)

    def test_nodes_keep_insertion_order(self):
        g = DiGraph()
        for node in ["z", "m", "a"]:
            g.add_node(node)
        assert g.nodes() == ["z", "m", "a"]
