"""Unit tests for transitive closure and reachability bitsets."""

import pytest

from repro.errors import CycleError
from repro.graphs.closure import descendants, reachability_bitsets, transitive_closure
from repro.graphs.digraph import DiGraph


class TestDescendants:
    def test_direct_and_transitive(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])
        assert descendants(g, "a") == {"b", "c", "d"}
        assert descendants(g, "c") == {"d"}
        assert descendants(g, "d") == set()

    def test_works_on_cyclic_graphs(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a"), ("b", "c")])
        assert descendants(g, "a") == {"a", "b", "c"}


class TestReachabilityBitsets:
    def test_bits_match_descendants(self):
        g = DiGraph.from_edges(
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        order, reach = reachability_bitsets(g)
        position = {node: i for i, node in enumerate(order)}
        for node in g:
            expected = descendants(g, node)
            got = {
                order[i]
                for i in range(len(order))
                if reach[node] & (1 << i)
            }
            assert got == expected

    def test_cyclic_graph_raises(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(CycleError):
            reachability_bitsets(g)

    def test_partial_order_rejected(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(CycleError):
            reachability_bitsets(g, order=["a"])


class TestTransitiveClosure:
    def test_chain_closure(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        closure = transitive_closure(g)
        assert closure.has_edge("a", "c")
        assert closure.has_edge("a", "b")
        assert closure.has_edge("b", "c")
        assert not closure.has_edge("c", "a")

    def test_closure_preserves_nodes(self):
        g = DiGraph()
        g.add_node("lonely")
        g.add_edge("a", "b")
        closure = transitive_closure(g)
        assert closure.has_node("lonely")
        assert closure.node_count == 3

    def test_closure_is_idempotent(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])
        once = transitive_closure(g)
        twice = transitive_closure(once)
        assert set(once.edges()) == set(twice.edges())
