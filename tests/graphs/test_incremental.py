"""Tests for the Pearce–Kelly incremental topological ordering graph."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import CycleError
from repro.graphs.cycles import find_cycle
from repro.graphs.digraph import DiGraph
from repro.graphs.incremental import IncrementalDiGraph

NODES = list(range(8))


class TestBasics:
    def test_forward_insert_is_accepted(self):
        g = IncrementalDiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert g.has_edge("a", "b")
        assert g.check_order_invariant()
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_back_insert_reorders(self):
        g = IncrementalDiGraph()
        for node in ("a", "b", "c"):
            g.add_node(node)
        # "c" got the largest index at creation; this edge forces a
        # local reorder instead of a rebuild.
        g.add_edge("c", "a")
        assert g.check_order_invariant()
        assert g.order_index("c") < g.order_index("a")

    def test_cycle_is_refused_and_graph_untouched(self):
        g = IncrementalDiGraph()
        g.add_edge("a", "b", label="x")
        g.add_edge("b", "c", label="y")
        before_edges = set(g.edges())
        before_order = g.topological_order()
        with pytest.raises(CycleError) as err:
            g.add_edge("c", "a")
        assert set(g.edges()) == before_edges
        assert g.topological_order() == before_order
        cycle = err.value.cycle
        assert cycle[0] == cycle[-1]
        # All but the refused closing arc are real edges.
        for a, b in zip(cycle, cycle[1:-1]):
            assert g.has_edge(a, b)

    def test_self_loop_is_refused(self):
        g = IncrementalDiGraph()
        g.add_node("a")
        with pytest.raises(CycleError):
            g.add_edge("a", "a")
        assert not g.has_edge("a", "a")

    def test_batch_is_all_or_nothing(self):
        g = IncrementalDiGraph()
        g.add_edge("a", "b")
        result = g.try_add_edges(
            [("b", "c", None), ("c", "d", None), ("d", "b", None)]
        )
        assert result is None
        assert not g.has_edge("b", "c")
        assert not g.has_edge("c", "d")
        assert "c" not in g  # nodes created for the failed batch go too
        assert "d" not in g
        assert g.last_rejected_cycle is not None

    def test_undo_batch_restores_previous_state(self):
        g = IncrementalDiGraph()
        g.add_edge("a", "b", label="I")
        batch = g.try_add_edges(
            [("b", "c", "D"), ("a", "b", "F")]  # second arc: label merge
        )
        assert batch is not None
        assert g.edge_labels("a", "b") == {"I", "F"}
        g.undo_batch(batch)
        assert not g.has_edge("b", "c")
        assert g.edge_labels("a", "b") == {"I"}
        assert g.check_order_invariant()

    def test_copy_preserves_order(self):
        g = IncrementalDiGraph()
        for node in ("a", "b", "c"):
            g.add_node(node)
        g.add_edge("c", "a")
        clone = g.copy()
        assert clone.topological_order() == g.topological_order()
        clone.add_edge("a", "b")
        assert not g.has_edge("a", "b")

    def test_add_labelled_edges_goes_through_order_maintenance(self):
        g = IncrementalDiGraph()
        g.add_labelled_edges([("a", "b", "I"), ("b", "c", "D")])
        assert g.check_order_invariant()
        with pytest.raises(CycleError):
            g.add_labelled_edges([("c", "d", None), ("d", "a", None)])
        assert not g.has_edge("c", "d")


@st.composite
def edge_sequences(draw):
    return draw(
        st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=30,
        )
    )


@given(edge_sequences())
@settings(max_examples=200, deadline=None)
def test_agrees_with_dfs_reference(edges):
    """Insert-by-insert equivalence with the copy-and-rescan reference."""
    incremental = IncrementalDiGraph()
    reference = DiGraph()
    for node in NODES:
        incremental.add_node(node)
        reference.add_node(node)
    for source, target in edges:
        candidate = reference.copy()
        candidate.add_edge(source, target)
        should_accept = find_cycle(candidate) is None
        batch = incremental.try_add_edges([(source, target, None)])
        assert (batch is not None) == should_accept
        if should_accept:
            reference = candidate
        assert set(incremental.edges()) == set(reference.edges())
        assert incremental.check_order_invariant()


@given(edge_sequences(), st.integers(0, 29))
@settings(max_examples=150, deadline=None)
def test_undo_is_exact_inverse(edges, split):
    """Applying then undoing a suffix of batches restores the prefix."""
    g = IncrementalDiGraph()
    for node in NODES:
        g.add_node(node)
    batches = []
    snapshot = None
    for i, (source, target) in enumerate(edges):
        if i == split:
            snapshot = (set(g.edges()), dict(g._ord))
        batch = g.try_add_edges([(source, target, "L")])
        if batch is not None and i >= split:
            batches.append(batch)
    if snapshot is None:
        return
    for batch in reversed(batches):
        g.undo_batch(batch)
    assert set(g.edges()) == snapshot[0]
    assert g.check_order_invariant()
