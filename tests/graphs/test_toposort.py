"""Unit tests for topological sorting."""

import pytest

from repro.errors import CycleError
from repro.graphs.digraph import DiGraph
from repro.graphs.toposort import all_topological_sorts, topological_sort


def _is_topological(graph: DiGraph, order: list) -> bool:
    position = {node: i for i, node in enumerate(order)}
    return all(position[a] < position[b] for a, b in graph.edges())


class TestTopologicalSort:
    def test_respects_edges(self):
        g = DiGraph.from_edges(
            [("a", "b"), ("b", "c"), ("a", "c"), ("d", "c")]
        )
        order = topological_sort(g)
        assert _is_topological(g, order)
        assert len(order) == 4

    def test_key_breaks_ties(self):
        g = DiGraph()
        for node in ["c", "a", "b"]:
            g.add_node(node)
        assert topological_sort(g, key=lambda n: n) == ["a", "b", "c"]
        assert topological_sort(g, key=lambda n: {"a": 3, "b": 2, "c": 1}[n]) == [
            "c",
            "b",
            "a",
        ]

    def test_unorderable_nodes_are_fine(self):
        # Equal keys must not force node comparison.
        g = DiGraph()
        g.add_node(object())
        g.add_node(object())
        assert len(topological_sort(g, key=lambda _n: 0)) == 2

    def test_cycle_raises(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(CycleError):
            topological_sort(g)

    def test_empty_graph(self):
        assert topological_sort(DiGraph()) == []


class TestAllTopologicalSorts:
    def test_enumerates_all_linear_extensions(self):
        g = DiGraph.from_edges([("a", "b")])
        g.add_node("c")
        orders = {tuple(order) for order in all_topological_sorts(g)}
        # c floats freely among a<b: 3 positions.
        assert orders == {
            ("a", "b", "c"),
            ("a", "c", "b"),
            ("c", "a", "b"),
        }

    def test_every_result_is_topological(self):
        g = DiGraph.from_edges([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        results = list(all_topological_sorts(g))
        assert results
        for order in results:
            assert _is_topological(g, order)

    def test_chain_has_single_extension(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        assert [tuple(o) for o in all_topological_sorts(g)] == [
            ("a", "b", "c")
        ]

    def test_antichain_yields_factorial_many(self):
        g = DiGraph()
        for node in "abcd":
            g.add_node(node)
        assert sum(1 for _ in all_topological_sorts(g)) == 24

    def test_cycle_raises(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(CycleError):
            list(all_topological_sorts(g))
