"""Hypothesis property tests for the graph substrate."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graphs.closure import descendants, transitive_closure
from repro.graphs.cycles import find_cycle, is_acyclic
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import condensation, strongly_connected_components
from repro.graphs.toposort import topological_sort

NODES = list(range(8))


@st.composite
def graphs(draw):
    edges = draw(
        st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=20,
        )
    )
    g = DiGraph()
    for node in draw(st.lists(st.sampled_from(NODES), max_size=8)):
        g.add_node(node)
    for src, dst in edges:
        g.add_edge(src, dst)
    return g


@st.composite
def dags(draw):
    edges = draw(
        st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=20,
        )
    )
    g = DiGraph()
    for node in NODES:
        g.add_node(node)
    for src, dst in edges:
        if src < dst:  # edges point forward: guaranteed acyclic
            g.add_edge(src, dst)
    return g


@given(graphs())
@settings(max_examples=150, deadline=None)
def test_find_cycle_returns_real_cycles(g):
    cycle = find_cycle(g)
    if cycle is None:
        # No cycle claimed: a topological sort must exist.
        order = topological_sort(g)
        position = {node: i for i, node in enumerate(order)}
        assert all(position[a] < position[b] for a, b in g.edges())
    else:
        assert cycle[0] == cycle[-1]
        assert len(cycle) >= 2
        for a, b in zip(cycle, cycle[1:]):
            assert g.has_edge(a, b)


@given(dags())
@settings(max_examples=100, deadline=None)
def test_dags_are_acyclic_and_sortable(g):
    assert is_acyclic(g)
    order = topological_sort(g, key=lambda n: n)
    assert len(order) == g.node_count
    position = {node: i for i, node in enumerate(order)}
    assert all(position[a] < position[b] for a, b in g.edges())


@given(dags())
@settings(max_examples=80, deadline=None)
def test_closure_matches_descendants(g):
    closure = transitive_closure(g)
    for node in g:
        assert closure.successors(node) == frozenset(descendants(g, node))


@given(graphs())
@settings(max_examples=100, deadline=None)
def test_sccs_partition_the_nodes(g):
    components = strongly_connected_components(g)
    seen = [node for component in components for node in component]
    assert len(seen) == g.node_count
    assert set(seen) == set(g.nodes())


@given(graphs())
@settings(max_examples=80, deadline=None)
def test_condensation_is_acyclic(g):
    dag, component_of = condensation(g)
    assert is_acyclic(dag)
    assert set(component_of) == set(g.nodes())


@given(graphs())
@settings(max_examples=80, deadline=None)
def test_mutual_reachability_iff_same_scc(g):
    from repro.graphs.cycles import has_path

    _, component_of = condensation(g)
    nodes = g.nodes()
    for a in nodes[:4]:
        for b in nodes[:4]:
            if a == b:
                continue
            same = component_of[a] == component_of[b]
            mutual = has_path(g, a, b) and has_path(g, b, a)
            assert same == mutual
