"""Unit tests for cycle detection and reachability."""

from repro.graphs.cycles import find_cycle, has_path, is_acyclic
from repro.graphs.digraph import DiGraph


class TestFindCycle:
    def test_empty_graph_is_acyclic(self):
        assert find_cycle(DiGraph()) is None
        assert is_acyclic(DiGraph())

    def test_dag_is_acyclic(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        assert is_acyclic(g)

    def test_two_cycle_found(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        cycle = find_cycle(g)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b"}

    def test_cycle_is_a_walk_along_edges(self):
        g = DiGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "b"), ("a", "d")]
        )
        cycle = find_cycle(g)
        assert cycle is not None
        for src, dst in zip(cycle, cycle[1:]):
            assert g.has_edge(src, dst)

    def test_self_loop_is_a_cycle(self):
        g = DiGraph()
        g.add_edge("a", "a")
        assert find_cycle(g) == ["a", "a"]

    def test_cycle_in_disconnected_component_found(self):
        g = DiGraph.from_edges(
            [("a", "b"), ("x", "y"), ("y", "z"), ("z", "x")]
        )
        cycle = find_cycle(g)
        assert cycle is not None
        assert set(cycle) <= {"x", "y", "z"}

    def test_long_path_does_not_recurse(self):
        # Iterative DFS: depth beyond the default recursion limit is fine.
        g = DiGraph()
        for i in range(5000):
            g.add_edge(i, i + 1)
        assert is_acyclic(g)
        g.add_edge(5000, 0)
        assert not is_acyclic(g)


class TestHasPath:
    def test_direct_edge(self):
        g = DiGraph.from_edges([("a", "b")])
        assert has_path(g, "a", "b")
        assert not has_path(g, "b", "a")

    def test_transitive_path(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        assert has_path(g, "a", "c")

    def test_trivial_empty_path_does_not_count(self):
        g = DiGraph()
        g.add_node("a")
        assert not has_path(g, "a", "a")

    def test_cycle_through_node_counts(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        assert has_path(g, "a", "a")

    def test_missing_nodes_are_unreachable(self):
        g = DiGraph.from_edges([("a", "b")])
        assert not has_path(g, "a", "z")
        assert not has_path(g, "z", "a")
