"""FlatPkGraph: unit coverage plus a from-scratch oracle property.

The flat engine is the certification hot path's graph, so its promises
are pinned directly:

* node ids come from a freelist — a release/acquire cycle reuses the
  slot and ``node_capacity`` tracks the peak live set, not cumulative
  allocations;
* ``try_add_batch`` is all-or-nothing — a refused batch leaves the
  graph byte-identical (arcs, masks, order invariant) and reports a
  genuine witness cycle;
* ``undo_batch`` removes exactly what the batch added, including
  restoring kind masks it merely widened;
* decisions agree with a from-scratch acyclicity oracle over any
  random interleaving of batches, undos, releases, and re-acquires.
"""

import hypothesis.strategies as st
from hypothesis import example, given, settings
from pytest import raises

from repro.errors import GraphError
from repro.graphs.incremental import FlatBatch, FlatPkGraph


def _batch():
    return FlatBatch([], [])


def _add(graph, arcs):
    """Insert ``[(u, v, bits), ...]`` as one batch; return (ok, batch)."""
    buf = []
    for u, v, bits in arcs:
        buf.extend((u, v, bits))
    batch = _batch()
    return graph.try_add_batch(buf, len(arcs), batch), batch


def _arc_set(graph):
    return dict(graph.edge_items())


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------
def test_acquire_release_reuses_ids():
    graph = FlatPkGraph()
    a = graph.acquire_node()
    b = graph.acquire_node()
    assert (a, b) == (0, 1)
    assert graph.node_capacity == 2
    graph.release_node(b)
    graph.release_node(a)
    # LIFO freelist: the most recently released id comes back first,
    # and capacity does not grow while the freelist is non-empty.
    assert graph.acquire_node() == a
    assert graph.acquire_node() == b
    assert graph.node_capacity == 2
    assert graph.acquire_node() == 2
    assert graph.node_capacity == 3


def test_release_refuses_nodes_with_edges():
    graph = FlatPkGraph()
    a = graph.acquire_node()
    b = graph.acquire_node()
    ok, batch = _add(graph, [(a, b, 1)])
    assert ok
    with raises(GraphError):
        graph.release_node(a)
    with raises(GraphError):
        graph.release_node(b)
    graph.undo_batch(batch)
    graph.release_node(a)
    graph.release_node(b)


def test_reacquired_id_starts_clean():
    graph = FlatPkGraph()
    a = graph.acquire_node()
    b = graph.acquire_node()
    ok, batch = _add(graph, [(a, b, 1)])
    assert ok
    graph.undo_batch(batch)
    graph.release_node(a)
    reused = graph.acquire_node()
    assert reused == a
    # No stale adjacency or masks; the reused id sits at the largest
    # order so a fresh arc from the survivor is the cheap O(1) case.
    assert graph.edge_mask(reused, b) == 0
    assert graph.edge_mask(b, reused) == 0
    assert graph.order_index(reused) > graph.order_index(b)


def test_mask_merging_and_undo_restores_previous_mask():
    graph = FlatPkGraph()
    a = graph.acquire_node()
    b = graph.acquire_node()
    ok, _ = _add(graph, [(a, b, 0b001)])
    assert ok
    # Widening an existing arc records the previous mask for undo; a
    # subset mask is a no-op the batch does not even record.
    ok, widen = _add(graph, [(a, b, 0b110), (a, b, 0b001)])
    assert ok
    assert graph.edge_mask(a, b) == 0b111
    assert widen.new_edges == []
    assert widen.mask_undo == [(a << 32) | b, 0b001]
    graph.undo_batch(widen)
    assert graph.edge_mask(a, b) == 0b001
    assert graph.edge_count == 1


def test_cycle_refusal_rolls_back_whole_batch():
    graph = FlatPkGraph()
    a = graph.acquire_node()
    b = graph.acquire_node()
    c = graph.acquire_node()
    ok, _ = _add(graph, [(a, b, 1), (b, c, 1)])
    assert ok
    before = dict(_arc_set(graph))
    # The batch's first arc is fine, the second closes a -> b -> c -> a.
    ok, _ = _add(graph, [(a, c, 2), (c, a, 1)])
    assert not ok
    assert _arc_set(graph) == before
    assert graph.check_order_invariant()
    witness = graph.last_rejected_cycle
    assert witness is not None and witness[0] == witness[-1]
    # Every witness arc is live or came from the rolled-back batch
    # itself (a -> c here: inserted before c -> a was refused).
    batch_arcs = {(a, c), (c, a)}
    for u, v in zip(witness, witness[1:]):
        assert graph.edge_mask(u, v) != 0 or (u, v) in batch_arcs


def test_remove_edge_requires_presence():
    graph = FlatPkGraph()
    a = graph.acquire_node()
    b = graph.acquire_node()
    with raises(GraphError):
        graph.remove_edge(a, b)
    ok, _ = _add(graph, [(a, b, 1)])
    assert ok
    graph.remove_edge(a, b)
    assert graph.edge_count == 0
    graph.release_node(a)
    graph.release_node(b)


# ----------------------------------------------------------------------
# From-scratch oracle property
# ----------------------------------------------------------------------
def _oracle_acyclic(arcs):
    """DFS acyclicity over a set of (u, v) arcs — the from-scratch oracle."""
    succ = {}
    for u, v in arcs:
        succ.setdefault(u, []).append(v)
    state = {}  # 1 = on stack, 2 = done
    for root in list(succ):
        if state.get(root):
            continue
        stack = [(root, iter(succ.get(root, ())))]
        state[root] = 1
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                mark = state.get(child)
                if mark == 1:
                    return False
                if mark is None:
                    state[child] = 1
                    stack.append((child, iter(succ.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                stack.pop()
    return True


@st.composite
def scripts(draw):
    """A command script over a small churning node pool."""
    commands = []
    for _ in range(draw(st.integers(10, 40))):
        kind = draw(st.sampled_from(("acquire", "release", "batch", "undo")))
        if kind == "batch":
            arcs = draw(
                st.lists(
                    st.tuples(
                        st.integers(0, 7),
                        st.integers(0, 7),
                        st.integers(1, 7),
                    ),
                    min_size=1,
                    max_size=4,
                )
            )
            commands.append(("batch", arcs))
        elif kind == "release":
            commands.append(("release", draw(st.integers(0, 7))))
        else:
            commands.append((kind, None))
    return commands


@given(scripts())
@settings(max_examples=60, deadline=None)
@example(
    script=[('acquire', None),
     ('acquire', None),
     ('acquire', None),
     ('acquire', None),
     ('acquire', None),
     ('acquire', None),
     ('acquire', None),
     ('batch', [(1, 0, 4)]),
     ('batch', [(1, 0, 1), (1, 0, 2)]),
     ('undo', None)],
).via('discovered failure')
def test_flat_graph_matches_from_scratch_oracle(script):
    graph = FlatPkGraph()
    live = []  # node ids currently acquired
    released = set()
    arcs = {}  # packed key -> mask, the oracle's mirror
    undo_stack = []  # (batch, arcs snapshot) — LIFO undo only

    for kind, payload in script:
        if kind == "acquire":
            capacity = graph.node_capacity
            nid = graph.acquire_node()
            if released:
                # Freelist reuse: no growth while released ids exist.
                assert nid in released
                assert graph.node_capacity == capacity
                released.discard(nid)
            else:
                assert nid == capacity
                assert graph.node_capacity == capacity + 1
            live.append(nid)
        elif kind == "release":
            if not live:
                continue
            nid = live[payload % len(live)]
            if any(
                key >> 32 == nid or key & 0xFFFFFFFF == nid
                for key in arcs
            ):
                with raises(GraphError):
                    graph.release_node(nid)
                continue
            graph.release_node(nid)
            live.remove(nid)
            released.add(nid)
            undo_stack.clear()  # reuse may invalidate old undo records
        elif kind == "batch":
            if len(live) < 2:
                continue
            triples = [
                (live[u % len(live)], live[v % len(live)], bits)
                for u, v, bits in payload
                if live[u % len(live)] != live[v % len(live)]
            ]
            if not triples:
                continue
            structural = {
                (u, v) for u, v, _ in triples if (u << 32) | v not in arcs
            }
            expected = _oracle_acyclic(
                {(key >> 32, key & 0xFFFFFFFF) for key in arcs}
                | structural
            )
            snapshot = dict(arcs)
            ok, batch = _add(graph, triples)
            assert ok == expected
            if ok:
                for u, v, bits in triples:
                    key = (u << 32) | v
                    arcs[key] = arcs.get(key, 0) | bits
                undo_stack.append((batch, snapshot))
            else:
                witness = graph.last_rejected_cycle
                assert witness is not None and witness[0] == witness[-1]
        elif kind == "undo":
            if not undo_stack:
                continue
            batch, snapshot = undo_stack.pop()
            graph.undo_batch(batch)
            arcs = snapshot

        assert _arc_set(graph) == arcs
        assert graph.check_order_invariant()
