"""Unit tests for strongly connected components."""

from repro.graphs.digraph import DiGraph
from repro.graphs.scc import condensation, strongly_connected_components


class TestTarjan:
    def test_dag_has_singleton_components(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        components = strongly_connected_components(g)
        assert sorted(len(c) for c in components) == [1, 1, 1]

    def test_cycle_is_one_component(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        components = strongly_connected_components(g)
        assert len(components) == 1
        assert set(components[0]) == {"a", "b", "c"}

    def test_mixed_graph(self):
        g = DiGraph.from_edges(
            [
                ("a", "b"),
                ("b", "a"),  # {a, b}
                ("b", "c"),
                ("c", "d"),
                ("d", "c"),  # {c, d}
                ("d", "e"),  # {e}
            ]
        )
        components = {
            frozenset(c) for c in strongly_connected_components(g)
        }
        assert components == {
            frozenset({"a", "b"}),
            frozenset({"c", "d"}),
            frozenset({"e"}),
        }

    def test_reverse_topological_order(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        components = strongly_connected_components(g)
        # Sinks first: c before b before a.
        flat = [c[0] for c in components]
        assert flat.index("c") < flat.index("b") < flat.index("a")

    def test_empty_graph(self):
        assert strongly_connected_components(DiGraph()) == []


class TestCondensation:
    def test_condensation_is_acyclic(self):
        from repro.graphs.cycles import is_acyclic

        g = DiGraph.from_edges(
            [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")]
        )
        dag, component_of = condensation(g)
        assert is_acyclic(dag)
        assert component_of["a"] == component_of["b"]
        assert component_of["c"] == component_of["d"]
        assert component_of["a"] != component_of["c"]
        assert dag.has_edge(component_of["a"], component_of["c"])

    def test_no_self_loops_in_condensation(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "a")])
        dag, component_of = condensation(g)
        cid = component_of["a"]
        assert not dag.has_edge(cid, cid)
