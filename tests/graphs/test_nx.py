"""Unit tests for the networkx bridge (networkx is installed in CI)."""

import networkx

from repro.graphs.digraph import DiGraph
from repro.graphs.nx import from_networkx, to_networkx


class TestToNetworkx:
    def test_nodes_and_edges_carry_over(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        g.add_node("lonely")
        nx_graph = to_networkx(g)
        assert set(nx_graph.nodes()) == {"a", "b", "c", "lonely"}
        assert set(nx_graph.edges()) == {("a", "b"), ("b", "c")}

    def test_labels_stored_as_edge_attribute(self):
        g = DiGraph()
        g.add_edge("a", "b", label="D")
        g.add_edge("a", "b", label="F")
        nx_graph = to_networkx(g)
        assert nx_graph.edges["a", "b"]["labels"] == {"D", "F"}

    def test_acyclicity_agrees_with_networkx(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        assert not networkx.is_directed_acyclic_graph(to_networkx(g))
        g2 = DiGraph.from_edges([("a", "b"), ("b", "c")])
        assert networkx.is_directed_acyclic_graph(to_networkx(g2))


class TestFromNetworkx:
    def test_round_trip(self):
        g = DiGraph()
        g.add_edge("a", "b", label="I")
        g.add_edge("b", "c")
        g.add_node("lonely")
        back = from_networkx(to_networkx(g))
        assert set(back.nodes()) == set(g.nodes())
        assert set(back.edges()) == set(g.edges())
        assert back.edge_labels("a", "b") == {"I"}
        assert back.edge_labels("b", "c") == frozenset()

    def test_plain_networkx_graph(self):
        nx_graph = networkx.DiGraph()
        nx_graph.add_edge(1, 2)
        g = from_networkx(nx_graph)
        assert g.has_edge(1, 2)


class TestRsgInNetworkx:
    def test_rsg_exports_with_arc_kinds(self, fig3):
        from repro.core.rsg import ArcKind, RelativeSerializationGraph

        rsg = RelativeSerializationGraph(fig3.schedule("S2"), fig3.spec)
        nx_graph = to_networkx(rsg.graph)
        assert nx_graph.number_of_nodes() == 6
        # networkx confirms the acyclicity Theorem 1 relies on.
        assert networkx.is_directed_acyclic_graph(nx_graph)
        labels = nx_graph.edges[
            next(iter(nx_graph.edges()))
        ]["labels"]
        assert all(isinstance(kind, ArcKind) for kind in labels)
