"""Unit tests for decision explanation (witness cycles, explain API)."""

from pathlib import Path

import pytest

from repro.core.rsg import ArcKind, RelativeSerializationGraph
from repro.io.notation import parse_problem
from repro.obs.explain import (
    Explanation,
    RejectionWitness,
    WitnessStep,
    explain_schedule,
    witness_from_cycle,
    witness_from_rsg,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.fixture(scope="module")
def fig4_problem():
    return parse_problem((EXAMPLES / "figure4.txt").read_text())


class TestWitnessStep:
    def test_renders_arrow_with_kinds(self):
        step = WitnessStep("w2[y]", "w1[x]", "DB")
        assert str(step) == "w2[y] --DB--> w1[x]"


class TestWitnessFromCycle:
    def test_closes_open_cycles(self):
        witness = witness_from_cycle(["a", "b"])
        assert [(s.source, s.target) for s in witness.steps] == [
            ("a", "b"), ("b", "a"),
        ]
        assert all(step.kinds == "?" for step in witness.steps)

    def test_kinds_resolver_labels_steps(self):
        witness = witness_from_cycle(
            ["a", "b", "a"],
            kinds_of=lambda s, t: (ArcKind.DEPENDENCY,),
        )
        assert [step.kinds for step in witness.steps] == ["D", "D"]


class TestExplainAdmissible:
    def test_figure2_s1_is_admissible_with_serial_witness(self, fig2):
        # The paper's subtlety: S1 is not relatively *serial* (T1 sees
        # T3 split across a transitive dependency) but its RSG is
        # acyclic, so it IS relatively serializable.
        explanation = explain_schedule(fig2.schedule("S1"), fig2.spec)
        assert explanation.admissible
        assert explanation.witness is None
        assert (
            str(explanation.serial_witness)
            == "w2[y] w1[x] r3[y] w3[z] r1[z]"
        )
        assert "relatively serializable" in explanation.format()

    def test_to_dict_of_admission(self, fig2):
        payload = explain_schedule(fig2.schedule("S1"), fig2.spec).to_dict()
        assert payload["admissible"] is True
        assert "witness" not in payload
        assert payload["serial_witness"]


class TestExplainRejection:
    def test_figure4_r_yields_the_labelled_cycle(self, fig4_problem):
        explanation = explain_schedule(
            fig4_problem.schedule("R"), fig4_problem.spec
        )
        assert not explanation.admissible
        assert explanation.serial_witness is None
        steps = {
            (step.source, step.target): step.kinds
            for step in explanation.witness.steps
        }
        assert steps == {
            ("w1[x]", "w4[t]"): "D",
            ("w4[t]", "w3[z]"): "DFB",
            ("w3[z]", "w2[y]"): "DF",
            ("w2[y]", "w1[x]"): "B",
        }

    def test_witness_agrees_with_the_rsg(self, fig4_problem):
        rsg = RelativeSerializationGraph(
            fig4_problem.schedule("R"), fig4_problem.spec
        )
        assert not rsg.is_acyclic
        witness = witness_from_rsg(rsg)
        for step in witness.steps:
            assert step.kinds != "?"
            # Each step's kind string matches the RSG's own labelling.
            source = next(
                op for op in rsg.schedule if op.label == step.source
            )
            target = next(
                op for op in rsg.schedule if op.label == step.target
            )
            kinds = rsg.arc_kinds(source, target)
            assert set(step.kinds) == {kind.value for kind in kinds}

    def test_format_names_the_cycle(self, fig4_problem):
        explanation = explain_schedule(
            fig4_problem.schedule("R"), fig4_problem.spec
        )
        text = explanation.format()
        assert "NOT relatively serializable" in text
        assert "w4[t] --DFB--> w3[z]" in text


class TestRejectionWitness:
    def _witness(self):
        return RejectionWitness(
            (
                WitnessStep("a", "b", "D"),
                WitnessStep("b", "a", "B"),
            )
        )

    def test_operations_do_not_repeat_first(self):
        assert self._witness().operations == ("a", "b")

    def test_reason_cycle_pairs_nodes_with_outgoing_kinds(self):
        assert self._witness().reason_cycle() == (("a", "D"), ("b", "B"))

    def test_to_dict_round_trip_shape(self):
        payload = self._witness().to_dict()
        assert payload == {
            "cycle": [
                {"source": "a", "target": "b", "kinds": "D"},
                {"source": "b", "target": "a", "kinds": "B"},
            ]
        }
