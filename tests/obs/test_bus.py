"""Unit tests for the trace bus and its sinks."""

import io

from repro.obs.bus import (
    NULL_BUS,
    JsonlSink,
    NullSink,
    RingBufferSink,
    TraceBus,
)
from repro.obs.events import EventKind


class TestTraceBus:
    def test_no_sink_means_inactive_and_no_sequence_advance(self):
        bus = TraceBus()
        assert not bus.active
        bus.emit(EventKind.GRANT, tx=1)
        assert bus.events_emitted == 0

    def test_stamps_tick_and_gap_free_sequence(self):
        sink = RingBufferSink()
        bus = TraceBus(sink)
        bus.clock(0)
        bus.emit(EventKind.REQUEST, tx=1, op="r1[x]")
        bus.emit(EventKind.GRANT, tx=1, op="r1[x]")
        bus.clock(1)
        bus.emit(EventKind.COMMIT, tx=1)
        assert [e.seq for e in sink.events] == [0, 1, 2]
        assert [e.tick for e in sink.events] == [0, 0, 1]

    def test_tick_defaults_to_minus_one_outside_simulation(self):
        sink = RingBufferSink()
        bus = TraceBus(sink)
        bus.emit(EventKind.CERTIFY_ATTEMPT, tx=1, op="w1[x]")
        assert sink.events[0].tick == -1

    def test_fans_out_to_every_sink(self):
        counting, ring = NullSink(), RingBufferSink()
        bus = TraceBus(counting, ring)
        bus.emit(EventKind.WAIT, tx=2)
        assert counting.count == 1
        assert len(ring.events) == 1

    def test_attach_after_construction(self):
        bus = TraceBus()
        sink = RingBufferSink()
        bus.attach(sink)
        assert bus.active
        bus.emit(EventKind.CRASH)
        assert len(sink.events) == 1

    def test_null_bus_is_shared_and_inert(self):
        assert not NULL_BUS.active
        NULL_BUS.emit(EventKind.GRANT)
        assert NULL_BUS.events_emitted == 0


class TestSinks:
    def test_ring_buffer_caps_at_capacity(self):
        sink = RingBufferSink(capacity=2)
        bus = TraceBus(sink)
        for tx in (1, 2, 3):
            bus.emit(EventKind.GRANT, tx=tx)
        assert [e.tx for e in sink.events] == [2, 3]

    def test_ring_buffer_text_is_jsonl(self):
        sink = RingBufferSink()
        bus = TraceBus(sink)
        bus.emit(EventKind.GRANT, tx=1)
        bus.emit(EventKind.COMMIT, tx=1)
        lines = sink.text().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith('{"seq":0,')

    def test_jsonl_sink_streams_lines(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        bus = TraceBus(sink)
        bus.emit(EventKind.GRANT, tx=1)
        assert sink.text() == '{"seq":0,"tick":-1,"kind":"grant","tx":1}\n'

    def test_jsonl_sink_owns_file_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        bus = TraceBus(sink)
        bus.emit(EventKind.GRANT, tx=1)
        bus.close()
        assert path.read_text().count("\n") == 1


class TestDeterminism:
    def test_identical_emission_identical_bytes(self):
        def run():
            sink = RingBufferSink()
            bus = TraceBus(sink)
            for tick in range(3):
                bus.clock(tick)
                bus.emit(EventKind.REQUEST, tx=tick, op=f"r{tick}[x]")
                bus.emit(EventKind.GRANT, tx=tick, op=f"r{tick}[x]")
            return sink.text()

        assert run() == run()
