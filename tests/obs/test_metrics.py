"""Unit tests for the metrics registry and its deterministic merge."""

import json

from repro.obs.metrics import MetricsRegistry


class TestRecording:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("sim.grants", protocol="rsgt")
        registry.inc("sim.grants", 2, protocol="rsgt")
        registry.inc("sim.grants", protocol="2pl")
        assert registry.counter_value("sim.grants", protocol="rsgt") == 3
        assert registry.counter_value("sim.grants", protocol="2pl") == 1
        assert registry.counter_value("sim.grants") == 0

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.gauge("sim.makespan", 10)
        registry.gauge("sim.makespan", 7)
        assert registry.gauge_value("sim.makespan") == 7
        assert registry.gauge_value("missing") is None

    def test_observations_track_sum_count_min_max(self):
        registry = MetricsRegistry()
        for value in (3, 1, 5):
            registry.observe("waits", value)
        report = registry.to_dict()
        assert report["observations"]["waits"] == {
            "sum": 9, "count": 3, "min": 1, "max": 5,
        }

    def test_label_rendering_is_sorted(self):
        registry = MetricsRegistry()
        registry.inc("x", b=1, a=2)
        assert list(registry.to_dict()["counters"]) == ["x{a=2,b=1}"]


class TestMerge:
    def _one(self, grants, makespan):
        registry = MetricsRegistry()
        registry.inc("grants", grants, protocol="rsgt")
        registry.gauge("makespan", makespan, protocol="rsgt")
        registry.observe("waits", grants)
        return registry

    def test_counters_add_gauges_max_observations_combine(self):
        merged = self._one(3, 10).merge(self._one(5, 7))
        assert merged.counter_value("grants", protocol="rsgt") == 8
        assert merged.gauge_value("makespan", protocol="rsgt") == 10
        assert merged.to_dict()["observations"]["waits"] == {
            "sum": 8, "count": 2, "min": 3, "max": 5,
        }

    def test_merge_order_does_not_change_the_report(self):
        parts = [self._one(i, 10 - i) for i in range(4)]
        forward = MetricsRegistry()
        for part in parts:
            forward.merge(part)
        backward = MetricsRegistry()
        for part in reversed([self._one(i, 10 - i) for i in range(4)]):
            backward.merge(part)
        assert forward.to_json() == backward.to_json()


class TestReporting:
    def test_timers_excluded_by_default(self):
        registry = MetricsRegistry()
        with registry.timer("phase", protocol="rsgt"):
            pass
        assert "timers" not in registry.to_dict()
        timers = registry.to_dict(include_timers=True)["timers"]
        assert timers["phase{protocol=rsgt}"]["calls"] == 1

    def test_to_json_is_byte_stable(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("b", 2, protocol="x")
            registry.inc("a", 1)
            registry.gauge("g", 5)
            return registry.to_json()

        assert build() == build()
        payload = json.loads(build())
        assert list(payload) == sorted(payload)
