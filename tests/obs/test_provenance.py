"""Decision provenance: every non-grant Outcome carries a Reason."""

from pathlib import Path

import pytest

from repro.core.transactions import Transaction
from repro.io.notation import parse_problem
from repro.protocols.base import Decision
from repro.protocols.certifier import RsgCertifier
from repro.protocols.rsgt import RSGTScheduler
from repro.protocols.sgt import SGTScheduler
from repro.protocols.two_phase import TwoPhaseLockingScheduler

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.fixture(scope="module")
def fig4_problem():
    return parse_problem((EXAMPLES / "figure4.txt").read_text())


def _drive(scheduler, transactions, labels):
    """Admit all transactions and submit operations by label, returning
    the outcome of the last one."""
    by_label = {}
    for tx in transactions:
        scheduler.admit(tx)
        for op in tx:
            by_label[op.label] = op
    outcome = None
    for label in labels:
        outcome = scheduler.request(by_label[label])
    return outcome


class TestLockConflictProvenance:
    def test_2pl_wait_names_the_lock_holder(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[y]"),
            Transaction.from_notation(2, "w[x]"),
        ]
        outcome = _drive(
            TwoPhaseLockingScheduler(), txs, ["w1[x]", "w2[x]"]
        )
        assert outcome.decision is Decision.WAIT
        assert outcome.reason is not None
        assert outcome.reason.code == "lock-conflict"
        assert outcome.reason.blockers == (1,)

    def test_2pl_deadlock_names_the_cycle_parties(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[y]"),
            Transaction.from_notation(2, "w[y] w[x]"),
        ]
        outcome = _drive(
            TwoPhaseLockingScheduler(),
            txs,
            ["w1[x]", "w2[y]", "w1[y]", "w2[x]"],
        )
        assert outcome.decision is Decision.ABORT
        assert outcome.reason.code == "deadlock"
        # blockers names the immediate lock holders; detail names the
        # requester whose wait edge closed the cycle.
        assert outcome.reason.blockers == (1,)
        assert "T2" in outcome.reason.detail


class TestSerializationGraphProvenance:
    def test_sgt_abort_carries_the_sg_cycle(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[y]"),
            Transaction.from_notation(2, "r[y] w[x]"),
        ]
        outcome = _drive(
            SGTScheduler(), txs, ["r1[x]", "r2[y]", "w1[y]", "w2[x]"]
        )
        assert outcome.decision is Decision.ABORT
        assert outcome.reason.code == "sg-cycle"
        assert set(outcome.reason.blockers) == {1, 2}
        assert outcome.reason.cycle


class TestCertifierProvenance:
    def _reject(self, fig4_problem):
        certifier = RsgCertifier(fig4_problem.spec)
        for tx in fig4_problem.transactions:
            certifier.declare(tx)
        rejected = None
        for op in fig4_problem.schedule("R"):
            if not certifier.try_certify(op):
                rejected = op
        return certifier, rejected

    def test_rejection_reason_carries_the_labelled_cycle(
        self, fig4_problem
    ):
        certifier, rejected = self._reject(fig4_problem)
        assert rejected is not None
        reason = certifier.rejection_reason()
        assert reason.code == "rsg-cycle"
        assert reason.blockers
        assert reason.cycle
        # Every cycle step is labelled with real arc kinds, never "?".
        for _node, kinds in reason.cycle:
            assert kinds
            assert set(kinds) <= set("IDFB")

    def test_rsgt_abort_reason_matches_the_certifier(self, fig4_problem):
        scheduler = RSGTScheduler(fig4_problem.spec)
        outcome = _drive(
            scheduler,
            fig4_problem.transactions,
            [op.label for op in fig4_problem.schedule("R")],
        )
        assert outcome.decision is Decision.ABORT
        assert outcome.reason.code == "rsg-cycle"
        assert outcome.reason.cycle
