"""Unit tests for the flight recorder (rings, triggers, dumps, replay)."""

import json

from repro.obs.bus import TraceBus
from repro.obs.events import EventKind, TraceEvent
from repro.obs.recorder import FlightRecorder


def _emit_some(bus, n=3, tx=1):
    for i in range(n):
        bus.emit(EventKind.REQUEST, tx=tx, op=f"r{tx}[x{i}]")
        bus.emit(EventKind.GRANT, tx=tx, op=f"r{tx}[x{i}]")


class TestRings:
    def test_default_single_global_ring(self):
        recorder = FlightRecorder(capacity=8)
        bus = TraceBus(recorder)
        _emit_some(bus)
        assert recorder.ring_keys == ("global",)
        assert recorder.ring_sizes() == {"global": 6}

    def test_resolver_routes_events_to_per_key_rings(self):
        recorder = FlightRecorder(
            capacity=8, resolve=lambda raw: f"tx{raw[3]}"
        )
        bus = TraceBus(recorder)
        _emit_some(bus, n=1, tx=1)
        _emit_some(bus, n=2, tx=2)
        assert recorder.ring_sizes() == {"tx1": 2, "tx2": 4}

    def test_capacity_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3)
        bus = TraceBus(recorder)
        _emit_some(bus, n=4)
        events = recorder.events("global")
        assert len(events) == 3
        assert events[0].seq == 5  # seqs 0..7 emitted, 0..4 evicted

    def test_events_are_typed_views(self):
        recorder = FlightRecorder()
        bus = TraceBus(recorder)
        bus.emit(EventKind.COMMIT, tx=7, protocol="rsgt")
        (event,) = recorder.events("global")
        assert isinstance(event, TraceEvent)
        assert (event.kind, event.tx) == (EventKind.COMMIT, 7)

    def test_rejects_nonpositive_capacity(self):
        import pytest

        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDumps:
    def test_dump_text_header_and_ring_prefixed_lines(self):
        recorder = FlightRecorder(resolve=lambda raw: f"t{raw[3]}")
        bus = TraceBus(recorder)
        _emit_some(bus, n=1, tx=2)
        _emit_some(bus, n=1, tx=1)
        lines = recorder.dump_text("unit-test").splitlines()
        header = json.loads(lines[0])
        assert header == {
            "flight": "unit-test",
            "events": 4,
            "rings": {"t1": 2, "t2": 2},
        }
        rings = [json.loads(line)["ring"] for line in lines[1:]]
        assert rings == ["t1", "t1", "t2", "t2"]  # sorted key order

    def test_dump_without_directory_returns_none(self):
        recorder = FlightRecorder()
        TraceBus(recorder).emit(EventKind.COMMIT, tx=1)
        assert recorder.dump("nowhere") is None
        assert recorder.dumped == []

    def test_dump_writes_numbered_files(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        TraceBus(recorder).emit(EventKind.COMMIT, tx=1)
        first = recorder.dump("alpha beta")
        second = recorder.dump("gamma")
        assert first.name == "flight-0000-alpha-beta.jsonl"
        assert second.name == "flight-0001-gamma.jsonl"
        assert recorder.dumped == [first, second]
        assert json.loads(first.read_text().splitlines()[0])["flight"] == (
            "alpha beta"
        )

    def test_trigger_kind_auto_dumps_when_directory_set(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        bus = TraceBus(recorder)
        _emit_some(bus)
        assert recorder.dumped == []
        bus.emit(EventKind.CRASH, protocol="store")
        assert len(recorder.dumped) == 1
        assert "crash" in recorder.dumped[0].name
        # The triggering event itself is in the dump.
        kinds = [
            json.loads(line).get("kind")
            for line in recorder.dumped[0].read_text().splitlines()[1:]
        ]
        assert "crash" in kinds

    def test_no_auto_dump_without_directory(self):
        recorder = FlightRecorder()
        TraceBus(recorder).emit(EventKind.WATCHDOG, tx=1)
        assert recorder.dumped == []


class TestReplay:
    def _trace_jsonl(self):
        from repro.obs.bus import JsonlSink
        import io

        buffer = io.StringIO()
        bus = TraceBus(JsonlSink(buffer))
        _emit_some(bus, n=2)
        bus.emit(EventKind.CRASH, protocol="store")
        return buffer.getvalue()

    def test_replay_reconstructs_events_and_fires_triggers(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        replayed = recorder.replay_jsonl(self._trace_jsonl(), key="run0")
        assert replayed == 5
        assert recorder.ring_sizes() == {"run0": 5}
        assert len(recorder.dumped) == 1  # the replayed CRASH triggered

    def test_replay_skips_non_event_header_lines(self):
        text = '{"run":0,"seed":42}\n' + self._trace_jsonl()
        recorder = FlightRecorder()
        assert recorder.replay_jsonl(text, key="run0") == 5

    def test_dump_replay_round_trip_preserves_events(self):
        source = FlightRecorder()
        bus = TraceBus(source)
        _emit_some(bus, n=2)
        text = source.dump_text("round-trip")
        target = FlightRecorder()
        target.replay_jsonl(text, key="copy")
        assert [e.to_dict() for e in target.events("copy")] == [
            e.to_dict() for e in source.events("global")
        ]

    def test_replay_restores_resolver_after_pinning(self):
        recorder = FlightRecorder(resolve=lambda raw: "resolved")
        recorder.replay_jsonl(self._trace_jsonl(), key="pinned")
        TraceBus(recorder).emit(EventKind.COMMIT, tx=1)
        assert set(recorder.ring_keys) == {"pinned", "resolved"}
