"""Chrome-trace conversion and end-to-end simulation tracing."""

import json

from repro.core.transactions import Transaction
from repro.obs.bus import RingBufferSink, TraceBus
from repro.obs.events import EventKind, TraceEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import chrome_trace_json, events_to_chrome
from repro.protocols.two_phase import TwoPhaseLockingScheduler
from repro.sim.runner import simulate


def _conflicting():
    return [
        Transaction.from_notation(1, "w[x] w[x]"),
        Transaction.from_notation(2, "w[x]"),
    ]


class TestChromeConversion:
    def test_shape_of_one_event(self):
        event = TraceEvent(0, 2, EventKind.GRANT, tx=1, op="r1[x]",
                           protocol="rsgt")
        payload = events_to_chrome([event])
        assert payload["displayTimeUnit"] == "ms"
        (entry,) = payload["traceEvents"]
        assert entry["name"] == "grant:r1[x]"
        assert entry["cat"] == "rsgt"
        assert entry["ph"] == "i"
        assert entry["ts"] == 2000
        assert entry["tid"] == 1
        assert entry["args"]["kind"] == "grant"

    def test_system_events_land_on_track_zero(self):
        event = TraceEvent(0, 1, EventKind.CRASH)
        (entry,) = events_to_chrome([event])["traceEvents"]
        assert entry["tid"] == 0
        assert entry["name"] == "crash"
        assert entry["cat"] == "repro"

    def test_sequence_breaks_intra_tick_ties(self):
        events = [
            TraceEvent(seq, 0, EventKind.GRANT, tx=1) for seq in range(3)
        ]
        stamps = [
            e["ts"] for e in events_to_chrome(events)["traceEvents"]
        ]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 3

    def test_json_is_byte_stable_and_loadable(self):
        events = [TraceEvent(0, 0, EventKind.GRANT, tx=1, op="w1[x]")]
        text = chrome_trace_json(events)
        assert text == chrome_trace_json(events)
        assert json.loads(text)["traceEvents"]


class TestSimulationTracing:
    def test_trace_covers_the_request_decision_lifecycle(self):
        sink = RingBufferSink()
        simulate(
            _conflicting(), TwoPhaseLockingScheduler(), bus=TraceBus(sink)
        )
        kinds = [event.kind for event in sink.events]
        assert EventKind.REQUEST in kinds
        assert EventKind.GRANT in kinds
        assert EventKind.WAIT in kinds
        assert EventKind.COMMIT in kinds
        # Decisions carry the scheduler's protocol name.
        assert all(
            event.protocol == "strict-2pl"
            for event in sink.events
            if event.kind is EventKind.GRANT
        )

    def test_wait_events_carry_lock_conflict_provenance(self):
        sink = RingBufferSink()
        simulate(
            _conflicting(), TwoPhaseLockingScheduler(), bus=TraceBus(sink)
        )
        wait = next(
            e for e in sink.events if e.kind is EventKind.WAIT
        )
        assert wait.reason is not None
        assert wait.reason.code == "lock-conflict"
        assert wait.reason.blockers

    def test_trace_is_byte_deterministic(self):
        def run():
            sink = RingBufferSink()
            simulate(
                _conflicting(),
                TwoPhaseLockingScheduler(),
                bus=TraceBus(sink),
            )
            return sink.text()

        assert run() == run()

    def test_metrics_agree_with_the_result(self):
        metrics = MetricsRegistry()
        result = simulate(
            _conflicting(), TwoPhaseLockingScheduler(), metrics=metrics
        )
        assert (
            metrics.counter_value("sim.commits", protocol="strict-2pl")
            == result.committed
        )
        assert (
            metrics.counter_value("sim.waits", protocol="strict-2pl")
            == result.total_waits
        )
        assert (
            metrics.gauge_value("sim.makespan", protocol="strict-2pl")
            == result.makespan
        )

    def test_untraced_run_matches_traced_run(self):
        plain = simulate(_conflicting(), TwoPhaseLockingScheduler())
        traced = simulate(
            _conflicting(),
            TwoPhaseLockingScheduler(),
            bus=TraceBus(RingBufferSink()),
        )
        assert str(plain.schedule) == str(traced.schedule)
        assert plain.makespan == traced.makespan
