"""Unit tests for the request-lifecycle span collector."""

import json

from repro.obs.bus import TraceBus
from repro.obs.events import EventKind
from repro.obs.spans import (
    SpanCollector,
    spans_from_events,
    spans_jsonl,
    spans_to_chrome,
)


def _collect(emitting):
    """Run ``emitting(bus)`` against a fresh bus + collector pair."""
    collector = SpanCollector()
    bus = TraceBus(collector)
    emitting(bus)
    return collector


class TestStages:
    def test_request_grant_folds_into_an_op_span(self):
        def scenario(bus):
            bus.clock(0)
            bus.emit(EventKind.REQUEST, tx=1, op="r1[x]", protocol="2pl")
            bus.emit(EventKind.GRANT, tx=1, op="r1[x]", protocol="2pl")

        spans = _collect(scenario).spans
        assert len(spans) == 1
        span = spans[0]
        assert (span.stage, span.outcome) == ("op", "grant")
        assert (span.tx, span.op, span.protocol) == (1, "r1[x]", "2pl")
        assert (span.start_tick, span.start_seq) == (0, 0)
        assert (span.end_tick, span.end_seq) == (0, 1)

    def test_each_wait_round_is_its_own_span(self):
        def scenario(bus):
            bus.emit(EventKind.REQUEST, tx=1, op="w1[x]")
            bus.emit(EventKind.WAIT, tx=1, op="w1[x]")
            bus.emit(EventKind.REQUEST, tx=1, op="w1[x]")
            bus.emit(EventKind.GRANT, tx=1, op="w1[x]")

        spans = _collect(scenario).spans
        assert [s.outcome for s in spans] == ["wait", "grant"]

    def test_certify_verdict_outcome_from_ok_extra(self):
        def scenario(bus):
            bus.emit(EventKind.CERTIFY_ATTEMPT, tx=1, op="w1[x]")
            bus.emit(
                EventKind.CERTIFY_VERDICT,
                tx=1,
                op="w1[x]",
                extra=(("ok", True),),
            )
            bus.emit(EventKind.CERTIFY_ATTEMPT, tx=2, op="w2[x]")
            bus.emit(
                EventKind.CERTIFY_VERDICT,
                tx=2,
                op="w2[x]",
                extra=(("ok", False),),
            )

        spans = _collect(scenario).spans
        assert [(s.stage, s.outcome) for s in spans] == [
            ("certify", "ok"),
            ("certify", "reject"),
        ]

    def test_txn_span_opens_at_admit_and_closes_at_commit(self):
        def scenario(bus):
            bus.emit(EventKind.ADMIT, tx=5, protocol="rsgt")
            bus.clock(3)
            bus.emit(EventKind.COMMIT, tx=5, protocol="rsgt")

        spans = _collect(scenario).spans
        # The ADMIT itself is also kept as an instant for the timeline.
        assert [(s.stage, s.outcome) for s in spans] == [
            ("event", "session-admit"),
            ("txn", "commit"),
        ]
        txn = spans[1]
        assert (txn.start_tick, txn.end_tick) == (-1, 3)

    def test_txn_span_opens_at_first_request_without_admit(self):
        def scenario(bus):
            bus.emit(EventKind.REQUEST, tx=1, op="r1[x]")
            bus.emit(EventKind.GRANT, tx=1, op="r1[x]")
            bus.emit(EventKind.RESTART, tx=1)

        spans = _collect(scenario).spans
        assert spans[-1].stage == "txn"
        assert spans[-1].outcome == "restart"
        assert spans[-1].start_seq == 0  # the first REQUEST

    def test_instants_become_zero_length_event_spans(self):
        def scenario(bus):
            bus.emit(EventKind.CRASH, protocol="store")
            bus.emit(EventKind.APPLY, tx=1, op="w1[x]")

        spans = _collect(scenario).spans
        assert [(s.stage, s.outcome) for s in spans] == [
            ("event", "crash"),
            ("event", "wal-apply"),
        ]
        assert all(
            (s.start_tick, s.start_seq) == (s.end_tick, s.end_seq)
            for s in spans
        )

    def test_unmatched_close_is_dropped_not_crashed(self):
        def scenario(bus):
            bus.emit(EventKind.GRANT, tx=9, op="r9[x]")
            bus.emit(EventKind.CERTIFY_VERDICT, tx=9, op="r9[x]")

        assert _collect(scenario).spans == ()


class TestCollectorSurface:
    def test_open_transactions_tracks_unclosed_incarnations(self):
        collector = SpanCollector()
        bus = TraceBus(collector)
        bus.emit(EventKind.ADMIT, tx=2)
        bus.emit(EventKind.ADMIT, tx=1)
        assert collector.open_transactions == (1, 2)
        bus.emit(EventKind.COMMIT, tx=2)
        assert collector.open_transactions == (1,)

    def test_capacity_bounds_closed_spans(self):
        collector = SpanCollector(capacity=2)
        bus = TraceBus(collector)
        for tx in (1, 2, 3):
            bus.emit(EventKind.REQUEST, tx=tx, op=f"r{tx}[x]")
            bus.emit(EventKind.GRANT, tx=tx, op=f"r{tx}[x]")
        assert len(collector) == 2
        assert [s.tx for s in collector.spans] == [2, 3]

    def test_text_matches_spans_jsonl(self):
        collector = SpanCollector()
        bus = TraceBus(collector)
        bus.emit(EventKind.REQUEST, tx=1, op="r1[x]")
        bus.emit(EventKind.GRANT, tx=1, op="r1[x]")
        assert collector.text() == spans_jsonl(collector.spans)


class TestExports:
    def _spans(self):
        def scenario(bus):
            bus.clock(0)
            bus.emit(EventKind.REQUEST, tx=1, op="r1[x]", protocol="rsgt")
            bus.emit(EventKind.GRANT, tx=1, op="r1[x]", protocol="rsgt")
            bus.clock(1)
            bus.emit(EventKind.COMMIT, tx=1, protocol="rsgt")

        return _collect(scenario).spans

    def test_spans_from_events_replays_raw_tuples(self):
        from repro.obs.bus import RingBufferSink

        ring = RingBufferSink()
        collector = SpanCollector()
        bus = TraceBus(ring, collector)
        bus.emit(EventKind.REQUEST, tx=1, op="r1[x]")
        bus.emit(EventKind.GRANT, tx=1, op="r1[x]")
        assert spans_from_events(ring.events) == collector.spans

    def test_chrome_export_shape(self):
        chrome = spans_to_chrome(self._spans())
        assert chrome["displayTimeUnit"] == "ms"
        slices = chrome["traceEvents"]
        assert all(event["ph"] == "X" for event in slices)
        assert all(event["dur"] >= 1 for event in slices)
        assert {event["tid"] for event in slices} == {1}

    def test_jsonl_round_trips_via_json(self):
        lines = spans_jsonl(self._spans()).splitlines()
        payloads = [json.loads(line) for line in lines]
        assert [p["stage"] for p in payloads] == ["op", "txn"]
        assert all("start_seq" in p and "end_seq" in p for p in payloads)


class TestSpanStreamDeterminism:
    """The span stream is a pure fold of the event stream, so it
    inherits the campaign trace's byte-determinism at any --jobs."""

    def _span_stream(self, jobs):
        from repro.faults.campaign import CampaignConfig, run_campaign
        from repro.obs.events import TraceEvent

        config = CampaignConfig(
            protocol="rsgt", runs=6, seed=33, trace=True
        )
        report = run_campaign(config, jobs=jobs)
        chunks = []
        for record in report.records:
            events = [
                TraceEvent.from_dict(json.loads(line))
                for line in record.trace.splitlines()
                if line
            ]
            chunks.append(spans_jsonl(spans_from_events(events)))
        return "".join(chunks)

    def test_byte_identical_at_jobs_1_and_4(self):
        assert self._span_stream(1) == self._span_stream(4)

    def test_stream_is_non_trivial(self):
        stream = self._span_stream(1)
        stages = {
            json.loads(line)["stage"] for line in stream.splitlines()
        }
        assert {"op", "txn"} <= stages
