"""Unit tests for trace events and structured reasons."""

import json

import pytest

from repro.obs.events import EventKind, Reason, TraceEvent


class TestEventKind:
    def test_wire_names_are_stable(self):
        # These strings appear in JSONL traces and golden files; renaming
        # one silently invalidates every checked-in trace.
        assert EventKind.REQUEST.value == "op-requested"
        assert EventKind.FAULT.value == "fault-injected"
        assert EventKind.CERTIFY_VERDICT.value == "certify-verdict"
        assert EventKind.LIVELOCK.value == "livelock"

    def test_wire_names_are_unique(self):
        values = [kind.value for kind in EventKind]
        assert len(values) == len(set(values))


class TestReason:
    def test_to_dict_omits_empty_fields(self):
        assert Reason("lock-conflict").to_dict() == {"code": "lock-conflict"}

    def test_to_dict_carries_payload(self):
        reason = Reason(
            "rsg-cycle",
            blockers=(1, 4),
            cycle=(("w1[y]", "F"), ("w4[x]", "D")),
            detail="online rejection",
        )
        assert reason.to_dict() == {
            "code": "rsg-cycle",
            "blockers": [1, 4],
            "cycle": [["w1[y]", "F"], ["w4[x]", "D"]],
            "detail": "online rejection",
        }

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Reason("deadlock").code = "other"


class TestTraceEvent:
    def test_to_dict_key_order_is_fixed(self):
        event = TraceEvent(
            seq=3,
            tick=1,
            kind=EventKind.ABORT,
            tx=2,
            op="w2[y]",
            protocol="2pl",
            reason=Reason("deadlock", blockers=(1,)),
            extra=(("victims", [2]),),
        )
        assert list(event.to_dict()) == [
            "seq", "tick", "kind", "tx", "op", "protocol", "reason",
            "victims",
        ]

    def test_json_line_is_compact_and_loadable(self):
        event = TraceEvent(0, 0, EventKind.GRANT, tx=1, op="r1[x]")
        line = event.to_json_line()
        assert " " not in line
        assert json.loads(line) == {
            "seq": 0, "tick": 0, "kind": "grant", "tx": 1, "op": "r1[x]",
        }

    def test_equal_events_render_identically(self):
        a = TraceEvent(5, 2, EventKind.WAIT, tx=3, protocol="rsgt")
        b = TraceEvent(5, 2, EventKind.WAIT, tx=3, protocol="rsgt")
        assert a == b
        assert a.to_json_line() == b.to_json_line()
