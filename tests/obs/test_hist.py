"""Unit tests for the fixed-boundary power-of-two histogram."""

import pytest

from repro.obs.hist import Histogram


class TestBuckets:
    def test_zero_has_its_own_bucket(self):
        h = Histogram.from_values([0, 0, 0])
        assert h.buckets() == {0: 3}
        assert h.percentile(50) == 0
        assert h.percentile(99) == 0

    def test_bucket_boundaries_are_powers_of_two(self):
        # Buckets cover [2**(i-1), 2**i - 1], keyed by upper bound.
        h = Histogram.from_values([1, 2, 3, 4, 7, 8])
        assert h.buckets() == {1: 1, 3: 2, 7: 2, 15: 1}

    def test_negative_values_are_rejected(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.record(-1)

    def test_large_values_fit(self):
        h = Histogram.from_values([2**60])
        assert h.count == 1
        assert h.percentile(50) == 2**60  # clamped to observed max


class TestPercentiles:
    def test_empty_histogram_reports_zeros(self):
        h = Histogram()
        assert h.percentiles() == {"p50": 0, "p90": 0, "p99": 0}

    def test_nearest_rank_within_bucket_upper_bound(self):
        # [2, 3] both land in bucket 2 (upper bound 3): p50 = p99 = 3.
        h = Histogram.from_values([2, 3])
        assert h.percentile(50) == 3
        assert h.percentile(99) == 3

    def test_clamps_to_observed_maximum(self):
        # 5 lands in bucket 3 (upper bound 7) but the histogram never
        # reports a percentile above the largest recorded value.
        h = Histogram.from_values([5])
        assert h.percentile(99) == 5

    def test_rank_selection_across_buckets(self):
        h = Histogram.from_values([1] * 98 + [100, 100])
        assert h.percentile(50) == 1
        assert h.percentile(98) == 1
        assert h.percentile(99) == 100

    def test_min_max_sum_count(self):
        h = Histogram.from_values([4, 9, 1])
        assert (h.count, h.total, h.min, h.max) == (3, 14, 1, 9)


class TestMergeAndSerialization:
    def test_merge_is_elementwise_addition(self):
        a = Histogram.from_values([1, 2, 3])
        b = Histogram.from_values([3, 100])
        a.merge(b)
        assert a.count == 5
        assert a.total == 109
        assert a.min == 1
        assert a.max == 100
        c = Histogram.from_values([1, 2, 3, 3, 100])
        assert a.buckets() == c.buckets()

    def test_merge_empty_is_identity(self):
        a = Histogram.from_values([7])
        before = a.to_dict()
        a.merge(Histogram())
        assert a.to_dict() == before

    def test_merged_percentiles_equal_pooled_percentiles(self):
        # Determinism under sharding: merging per-worker histograms
        # must give the same answers as one histogram over all values.
        shard1, shard2 = [3, 17, 17, 256], [0, 1, 1, 9000]
        a = Histogram.from_values(shard1)
        a.merge(Histogram.from_values(shard2))
        pooled = Histogram.from_values(shard1 + shard2)
        assert a.percentiles() == pooled.percentiles()
        assert a.to_dict() == pooled.to_dict()

    def test_to_dict_shape(self):
        d = Histogram.from_values([2, 3]).to_dict()
        assert d["count"] == 2
        assert d["sum"] == 5
        assert d["min"] == 2 and d["max"] == 3
        assert d["p50"] == 3 and d["p99"] == 3
        assert d["buckets"] == {"3": 2}  # upper-bound keys, JSON-friendly
