"""Unit tests for the arrival processes."""

import pytest

from repro.core.transactions import Transaction
from repro.sim.arrivals import (
    burst_arrivals,
    role_delayed_arrivals,
    uniform_arrivals,
)
from repro.sim.runner import simulate
from repro.protocols.two_phase import TwoPhaseLockingScheduler


@pytest.fixture()
def txs():
    return [
        Transaction.from_notation(1, "w[x]"),
        Transaction.from_notation(2, "w[y]"),
        Transaction.from_notation(3, "w[z]"),
    ]


class TestUniformArrivals:
    def test_spacing(self, txs):
        arrivals = uniform_arrivals(txs, interarrival=5)
        assert arrivals == {1: 0, 2: 5, 3: 10}

    def test_zero_gap_all_at_once(self, txs):
        assert set(uniform_arrivals(txs, 0).values()) == {0}

    def test_negative_gap_rejected(self, txs):
        with pytest.raises(ValueError):
            uniform_arrivals(txs, -1)


class TestBurstArrivals:
    def test_deterministic_per_seed(self, txs):
        assert burst_arrivals(txs, 3.0, seed=7) == burst_arrivals(
            txs, 3.0, seed=7
        )

    def test_nondecreasing_in_id_order(self, txs):
        arrivals = burst_arrivals(txs, 2.0, seed=1)
        ordered = [arrivals[tx.tx_id] for tx in txs]
        assert ordered == sorted(ordered)
        assert ordered[0] == 0

    def test_zero_mean_gap_all_at_once(self, txs):
        assert set(burst_arrivals(txs, 0.0, seed=2).values()) == {0}

    def test_negative_mean_rejected(self, txs):
        with pytest.raises(ValueError):
            burst_arrivals(txs, -0.5)


class TestRoleDelayedArrivals:
    def test_delays_by_role(self, txs):
        roles = {1: "long", 2: "short", 3: "short"}
        arrivals = role_delayed_arrivals(txs, roles, {"short": 4})
        assert arrivals == {1: 0, 2: 4, 3: 4}

    def test_unknown_roles_default_to_zero(self, txs):
        arrivals = role_delayed_arrivals(txs, {}, {"short": 4})
        assert set(arrivals.values()) == {0}


class TestArrivalsDriveTheSimulator:
    def test_staggered_run_matches_arrival_times(self, txs):
        arrivals = uniform_arrivals(txs, interarrival=3)
        result = simulate(txs, TwoPhaseLockingScheduler(), arrivals=arrivals)
        for tx in txs:
            outcome = result.outcomes[tx.tx_id]
            assert outcome.arrival == arrivals[tx.tx_id]
            assert outcome.commit_tick >= outcome.arrival

    def test_long_first_shorts_later(self):
        from repro.workloads.longlived import LongLivedWorkload
        from repro.sim.runner import simulate_bundle
        from repro.protocols.rsgt import RSGTScheduler
        from repro.core.rsg import is_relatively_serializable

        bundle = LongLivedWorkload(
            n_objects=4, n_long=1, n_short=3, short_ops=1, seed=0
        ).build()
        arrivals = role_delayed_arrivals(
            bundle.transactions, bundle.roles, {"short": 2}
        )
        result = simulate_bundle(
            bundle, RSGTScheduler(bundle.spec), arrivals=arrivals
        )
        assert is_relatively_serializable(result.schedule, bundle.spec)
        (long_id,) = [
            tx_id for tx_id, role in bundle.roles.items() if role == "long"
        ]
        assert result.outcomes[long_id].arrival == 0
