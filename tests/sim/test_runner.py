"""Unit tests for the simulator tick loop."""

import pytest

from repro.core.transactions import Transaction
from repro.errors import SimulationError
from repro.protocols.base import Outcome, Scheduler
from repro.protocols.sgt import SGTScheduler
from repro.protocols.two_phase import TwoPhaseLockingScheduler
from repro.sim.runner import simulate, simulate_bundle
from repro.workloads.longlived import LongLivedWorkload


class _GrantAll(Scheduler):
    name = "grant-all"

    def _decide(self, op):
        return Outcome.grant()


class _NeverGrant(Scheduler):
    name = "never-grant"

    def _decide(self, op):
        return Outcome.wait()


@pytest.fixture()
def txs():
    return [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "r[y] w[y]"),
    ]


class TestBasicRuns:
    def test_all_transactions_commit(self, txs):
        result = simulate(txs, _GrantAll())
        assert result.committed == 2
        assert set(result.outcomes) == {1, 2}
        assert len(result.schedule) == 4

    def test_grant_all_interleaves_round_robin(self, txs):
        result = simulate(txs, _GrantAll())
        # Both transactions advance every tick: makespan = longest tx.
        assert result.makespan == 2
        assert result.total_waits == 0
        assert result.total_restarts == 0

    def test_schedule_is_valid_over_transaction_set(self, txs):
        result = simulate(txs, _GrantAll())
        assert set(result.schedule.operations) == {
            op for tx in txs for op in tx
        }

    def test_livelock_guard(self, txs):
        with pytest.raises(SimulationError):
            simulate(txs, _NeverGrant(), max_ticks=50)


class TestArrivals:
    def test_late_arrival_delays_start(self, txs):
        result = simulate(txs, _GrantAll(), arrivals={2: 10})
        assert result.outcomes[2].arrival == 10
        assert result.outcomes[2].commit_tick >= 11
        assert result.outcomes[1].commit_tick <= 2

    def test_response_time_measured_from_arrival(self, txs):
        result = simulate(txs, _GrantAll(), arrivals={2: 10})
        assert result.outcomes[2].response_time == 2


class TestWithRealProtocols:
    def test_2pl_serializes_conflicting_transactions(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[x]"),
            Transaction.from_notation(2, "w[x] w[x]"),
        ]
        result = simulate(txs, TwoPhaseLockingScheduler())
        ops = [op.tx for op in result.schedule]
        # Strict 2PL on a single object: one transaction fully precedes
        # the other.
        assert ops in ([1, 1, 2, 2], [2, 2, 1, 1])
        assert result.total_waits > 0

    def test_waits_counted(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[x]"),
            Transaction.from_notation(2, "w[x]"),
        ]
        result = simulate(txs, TwoPhaseLockingScheduler())
        assert result.outcomes[2].waits >= 1

    def test_restarts_counted_with_sgt(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "r[x] w[x]"),
        ]
        result = simulate(txs, SGTScheduler())
        assert result.total_restarts >= 1
        assert result.committed == 2


class TestBundleRunner:
    def test_roles_copied_to_result(self):
        bundle = LongLivedWorkload(
            n_objects=3, n_long=1, n_short=2, seed=0
        ).build()
        result = simulate_bundle(bundle, _GrantAll())
        assert result.roles == bundle.roles
        assert result.mean_response_time_of("long") is not None
        assert result.mean_response_time_of("short") is not None
        assert result.mean_response_time_of("absent-role") is None
