"""Unit tests for the simulator tick loop."""

import pytest

from repro.core.transactions import Transaction
from repro.engine.kvstore import KVStore
from repro.errors import LivelockError, SimulationError
from repro.protocols.base import Outcome, Scheduler
from repro.protocols.sgt import SGTScheduler
from repro.protocols.two_phase import TwoPhaseLockingScheduler
from repro.sim.metrics import ABORTED
from repro.sim.runner import simulate, simulate_bundle
from repro.workloads.longlived import LongLivedWorkload


class _GrantAll(Scheduler):
    name = "grant-all"

    def _decide(self, op):
        return Outcome.grant()


class _NeverGrant(Scheduler):
    name = "never-grant"

    def _decide(self, op):
        return Outcome.wait()


class _AbortEveryone(Scheduler):
    name = "abort-everyone"

    def _decide(self, op):
        return Outcome.abort(op.tx)


class _FlakyFor(Scheduler):
    """Aborts the chosen transaction's first ``n`` requests, then grants."""

    name = "flaky"

    def __init__(self, victim, n):
        super().__init__()
        self._victim = victim
        self._left = n

    def _decide(self, op):
        if op.tx == self._victim and self._left > 0:
            self._left -= 1
            return Outcome.abort(op.tx)
        return Outcome.grant()


class _KillOnFirstRequest(Scheduler):
    """Aborts the chosen transaction once and marks it permanently dead."""

    name = "killer"

    def __init__(self, victim):
        super().__init__()
        self._victim = victim
        self.killed = frozenset()

    def _decide(self, op):
        if op.tx == self._victim and not self.killed:
            self.killed = frozenset({op.tx})
            return Outcome.abort(op.tx)
        return Outcome.grant()


@pytest.fixture()
def txs():
    return [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "r[y] w[y]"),
    ]


class TestBasicRuns:
    def test_all_transactions_commit(self, txs):
        result = simulate(txs, _GrantAll())
        assert result.committed == 2
        assert set(result.outcomes) == {1, 2}
        assert len(result.schedule) == 4

    def test_grant_all_interleaves_round_robin(self, txs):
        result = simulate(txs, _GrantAll())
        # Both transactions advance every tick: makespan = longest tx.
        assert result.makespan == 2
        assert result.total_waits == 0
        assert result.total_restarts == 0

    def test_schedule_is_valid_over_transaction_set(self, txs):
        result = simulate(txs, _GrantAll())
        assert set(result.schedule.operations) == {
            op for tx in txs for op in tx
        }

    def test_livelock_guard(self, txs):
        with pytest.raises(SimulationError):
            simulate(txs, _NeverGrant(), max_ticks=50)


class TestArrivals:
    def test_late_arrival_delays_start(self, txs):
        result = simulate(txs, _GrantAll(), arrivals={2: 10})
        assert result.outcomes[2].arrival == 10
        assert result.outcomes[2].commit_tick >= 11
        assert result.outcomes[1].commit_tick <= 2

    def test_response_time_measured_from_arrival(self, txs):
        result = simulate(txs, _GrantAll(), arrivals={2: 10})
        assert result.outcomes[2].response_time == 2


class TestWithRealProtocols:
    def test_2pl_serializes_conflicting_transactions(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[x]"),
            Transaction.from_notation(2, "w[x] w[x]"),
        ]
        result = simulate(txs, TwoPhaseLockingScheduler())
        ops = [op.tx for op in result.schedule]
        # Strict 2PL on a single object: one transaction fully precedes
        # the other.
        assert ops in ([1, 1, 2, 2], [2, 2, 1, 1])
        assert result.total_waits > 0

    def test_waits_counted(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[x]"),
            Transaction.from_notation(2, "w[x]"),
        ]
        result = simulate(txs, TwoPhaseLockingScheduler())
        assert result.outcomes[2].waits >= 1

    def test_restarts_counted_with_sgt(self):
        txs = [
            Transaction.from_notation(1, "r[x] w[x]"),
            Transaction.from_notation(2, "r[x] w[x]"),
        ]
        result = simulate(txs, SGTScheduler())
        assert result.total_restarts >= 1
        assert result.committed == 2


class TestStallGuard:
    def test_all_wait_raises_livelock_error_naming_waiters(self, txs):
        with pytest.raises(LivelockError) as info:
            simulate(txs, _NeverGrant(), max_stalled_ticks=10)
        assert info.value.waiting == (1, 2)
        assert "1" in str(info.value) and "2" in str(info.value)

    def test_guard_can_be_disabled(self, txs):
        # Falls through to the max_ticks guard instead.
        with pytest.raises(SimulationError) as info:
            simulate(
                txs, _NeverGrant(), max_ticks=40, max_stalled_ticks=None
            )
        assert not isinstance(info.value, LivelockError)

    def test_guard_does_not_trip_on_progress(self, txs):
        # A healthy run never accumulates stalled ticks.
        result = simulate(txs, _GrantAll(), max_stalled_ticks=1)
        assert result.committed == 2

    def test_blocking_attribute_empty_without_wait_edges(self, txs):
        # _NeverGrant records no waits-for edges, so the structured
        # diagnostic names the waiters but carries no blocking map.
        with pytest.raises(LivelockError) as info:
            simulate(txs, _NeverGrant(), max_stalled_ticks=10)
        assert info.value.blocking == {}

    def test_blocking_attribute_carries_wait_edges(self, txs):
        class _StickyWait(_NeverGrant):
            """Waits forever while recording who it claims to wait on."""

            def _decide(self, op):
                waiting = getattr(self, "_waiting_on", None)
                if waiting is None:
                    waiting = self._waiting_on = {}
                waiting[op.tx] = {(op.tx % 2) + 1}
                return Outcome.wait()

        with pytest.raises(LivelockError) as info:
            simulate(txs, _StickyWait(), max_stalled_ticks=10)
        error = info.value
        assert error.waiting == (1, 2)
        assert error.blocking == {1: (2,), 2: (1,)}
        # The message names both sides of the suspected wait cycle.
        assert "T1 on T2" in str(error)
        assert "T2 on T1" in str(error)

    def test_livelock_error_pickles_with_payload(self, txs):
        import pickle

        original = LivelockError(
            "stalled", waiting=(1, 2), blocking={1: (2,)}
        )
        clone = pickle.loads(pickle.dumps(original))
        assert clone.waiting == (1, 2)
        assert clone.blocking == {1: (2,)}
        assert str(clone) == "stalled"


class TestBoundedRetry:
    def test_max_attempts_permanently_aborts(self, txs):
        result = simulate(txs, _AbortEveryone(), max_attempts=3)
        assert result.committed == 0
        assert result.aborted == 2
        assert result.survivor_ids == ()
        assert len(result.schedule) == 0
        for outcome in result.outcomes.values():
            assert outcome.status == ABORTED
            assert outcome.restarts == 3

    def test_unbounded_retry_is_the_default(self, txs):
        # Without a budget the flaky victim eventually commits.
        result = simulate(txs, _FlakyFor(1, 5), backoff=1)
        assert result.committed == 2
        assert result.outcomes[1].restarts == 5

    def test_exponential_backoff_delays_restarts_longer(self, txs):
        linear = simulate(txs, _FlakyFor(1, 4), backoff=1)
        exponential = simulate(
            txs, _FlakyFor(1, 4), backoff=1, restart_policy="exponential"
        )
        # Delays 1+2+3+4 < 1+2+4+8: the victim lands strictly later.
        assert (
            exponential.outcomes[1].commit_tick
            > linear.outcomes[1].commit_tick
        )
        assert exponential.committed == 2

    def test_unknown_restart_policy_rejected(self, txs):
        with pytest.raises(SimulationError):
            simulate(txs, _FlakyFor(1, 1), restart_policy="fibonacci")

    def test_killed_set_overrides_the_retry_budget(self, txs):
        result = simulate(txs, _KillOnFirstRequest(1))
        assert result.survivor_ids == (2,)
        assert result.outcomes[1].status == ABORTED
        assert result.committed == 1


class TestStoreIntegration:
    def test_committed_writes_land_structurally(self, txs):
        store = KVStore({"x": "init", "y": "init"})
        result = simulate(txs, _GrantAll(), store=store)
        assert result.committed == 2
        # Each tx reads then writes its object: w[x] is T1's op #1.
        assert store.snapshot() == {"x": "T1.1", "y": "T2.1"}
        assert store.open_transactions == frozenset()

    def test_dead_transactions_leave_no_trace(self, txs):
        store = KVStore({"x": "init", "y": "init"})
        result = simulate(
            txs, _AbortEveryone(), max_attempts=2, store=store
        )
        assert result.committed == 0
        assert store.snapshot() == {"x": "init", "y": "init"}
        assert store.open_transactions == frozenset()

    def test_killed_transactions_writes_rolled_back(self):
        txs = [
            Transaction.from_notation(1, "w[x] w[y]"),
            Transaction.from_notation(2, "w[z]"),
        ]
        store = KVStore({"x": 0, "y": 0, "z": 0})
        scheduler = _FlakyFor(1, 10**6)  # T1 never succeeds
        result = simulate(txs, scheduler, max_attempts=2, store=store)
        assert result.survivor_ids == (2,)
        assert store.peek("x") == 0
        assert store.peek("z") == "T2.0"


class TestBundleRunner:
    def test_roles_copied_to_result(self):
        bundle = LongLivedWorkload(
            n_objects=3, n_long=1, n_short=2, seed=0
        ).build()
        result = simulate_bundle(bundle, _GrantAll())
        assert result.roles == bundle.roles
        assert result.mean_response_time_of("long") is not None
        assert result.mean_response_time_of("short") is not None
        assert result.mean_response_time_of("absent-role") is None


class _MassAbortOnce(Scheduler):
    """Waits for ``herd`` admissions, aborts them all at once, then grants.

    Models the multi-victim events (store crash, deadlock-cycle
    resolution) that put a whole cohort on the same restart clock.
    """

    name = "mass-abort"

    def __init__(self, herd):
        super().__init__()
        self._herd = herd
        self._fired = False

    def _decide(self, op):
        if self._fired:
            return Outcome.grant()
        if len(self.admitted_ids) < self._herd:
            return Outcome.wait()
        self._fired = True
        return Outcome.abort(*sorted(self.admitted_ids))


class TestRestartJitter:
    """Decorrelated restart jitter must break co-aborted herds."""

    N_VICTIMS = 6

    def _herd(self):
        return [
            Transaction.from_notation(i, "r[x] w[x]")
            for i in range(1, self.N_VICTIMS + 1)
        ]

    def _restart_horizons(self, **kwargs):
        from repro.obs.bus import RingBufferSink, TraceBus
        from repro.obs.events import EventKind

        sink = RingBufferSink()
        result = simulate(
            self._herd(),
            _MassAbortOnce(self.N_VICTIMS),
            bus=TraceBus(sink),
            **kwargs,
        )
        assert result.committed == self.N_VICTIMS
        return [
            dict(event.extra)["blocked_until"]
            for event in sink.events
            if event.kind is EventKind.RESTART
        ]

    def test_without_jitter_coaborted_victims_restart_in_lockstep(self):
        horizons = self._restart_horizons(backoff=8)
        assert len(horizons) == self.N_VICTIMS
        # The herd: every victim wakes on the same tick and re-collides.
        assert len(set(horizons)) == 1

    def test_seeded_jitter_disperses_the_herd(self):
        pure = self._restart_horizons(backoff=8)[0]
        horizons = self._restart_horizons(backoff=8, restart_jitter=123)
        assert len(horizons) == self.N_VICTIMS
        assert len(set(horizons)) > 1
        # Full jitter adds [0, base] on top of the pure policy delay.
        assert all(pure <= h <= 2 * pure for h in horizons)

    def test_same_seed_replays_identically(self):
        first = self._restart_horizons(backoff=8, restart_jitter=42)
        second = self._restart_horizons(backoff=8, restart_jitter=42)
        assert first == second

    def test_different_seeds_draw_different_spreads(self):
        a = self._restart_horizons(backoff=64, restart_jitter=1)
        b = self._restart_horizons(backoff=64, restart_jitter=2)
        assert a != b
