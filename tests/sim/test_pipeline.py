"""Unit tests for the schedule-execute-verify pipeline."""

from repro.protocols import RSGTScheduler, TwoPhaseLockingScheduler
from repro.sim.pipeline import run_workload
from repro.workloads.banking import BankingWorkload


def _bundle(seed=0):
    return BankingWorkload(
        n_families=2, accounts_per_family=2, customers_per_family=1,
        seed=seed,
    ).build()


class TestRunWorkload:
    def test_rsgt_run_is_verified_and_consistent(self):
        bundle = _bundle()
        run = run_workload(bundle, RSGTScheduler(bundle.spec))
        assert run.verified
        assert run.simulation.committed == len(bundle.transactions)
        assert (
            sum(run.trace.final_state.values())
            == bundle.metadata["expected_total"]
        )

    def test_2pl_run_verified_against_csr(self):
        bundle = _bundle(seed=1)
        run = run_workload(bundle, TwoPhaseLockingScheduler())
        assert run.verified
        assert run.simulation.protocol == "strict-2pl"

    def test_trace_covers_the_committed_history(self):
        bundle = _bundle(seed=2)
        run = run_workload(bundle, RSGTScheduler(bundle.spec))
        reads = sum(1 for op in run.simulation.schedule if op.is_read)
        assert len(run.trace.reads) == reads

    def test_audit_snapshot_consistent(self):
        bundle = _bundle(seed=3)
        run = run_workload(bundle, RSGTScheduler(bundle.spec))
        (audit,) = bundle.transactions_with_role("bank-audit")
        view = run.trace.transaction_view(audit.tx_id)
        assert sum(view.values()) == bundle.metadata["expected_total"]

    def test_arrivals_forwarded(self):
        bundle = _bundle(seed=4)
        arrivals = {tx.tx_id: 2 for tx in bundle.transactions}
        run = run_workload(
            bundle, RSGTScheduler(bundle.spec), arrivals=arrivals
        )
        assert all(
            outcome.arrival == 2
            for outcome in run.simulation.outcomes.values()
        )
