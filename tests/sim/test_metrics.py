"""Unit tests for the simulation metric types."""

from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.sim.metrics import SimulationResult, TransactionOutcome


def _result():
    txs = [
        Transaction.from_notation(1, "r[x]"),
        Transaction.from_notation(2, "w[y]"),
    ]
    schedule = Schedule.serial(txs)
    outcomes = {
        1: TransactionOutcome(
            tx_id=1, arrival=0, commit_tick=4, restarts=1, waits=2
        ),
        2: TransactionOutcome(
            tx_id=2, arrival=2, commit_tick=9, restarts=0, waits=3
        ),
    }
    return SimulationResult(
        protocol="test",
        schedule=schedule,
        outcomes=outcomes,
        makespan=10,
        roles={1: "short", 2: "long"},
    )


class TestTransactionOutcome:
    def test_response_time_inclusive(self):
        outcome = TransactionOutcome(
            tx_id=1, arrival=3, commit_tick=7, restarts=0, waits=0
        )
        assert outcome.response_time == 5


class TestSimulationResult:
    def test_committed_counts_outcomes(self):
        assert _result().committed == 2

    def test_totals(self):
        result = _result()
        assert result.total_restarts == 1
        assert result.total_waits == 5

    def test_throughput(self):
        assert _result().throughput == 0.2

    def test_throughput_of_empty_run_is_zero(self):
        result = _result()
        result.makespan = 0
        assert result.throughput == 0.0

    def test_mean_response_time(self):
        # (5 + 8) / 2
        assert _result().mean_response_time == 6.5

    def test_role_filtered_response_time(self):
        result = _result()
        assert result.mean_response_time_of("short") == 5
        assert result.mean_response_time_of("long") == 8
        assert result.mean_response_time_of("nope") is None
