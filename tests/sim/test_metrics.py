"""Unit tests for the simulation metric types."""

from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.sim.metrics import SimulationResult, TransactionOutcome


def _result():
    txs = [
        Transaction.from_notation(1, "r[x]"),
        Transaction.from_notation(2, "w[y]"),
    ]
    schedule = Schedule.serial(txs)
    outcomes = {
        1: TransactionOutcome(
            tx_id=1, arrival=0, commit_tick=4, restarts=1, waits=2
        ),
        2: TransactionOutcome(
            tx_id=2, arrival=2, commit_tick=9, restarts=0, waits=3
        ),
    }
    return SimulationResult(
        protocol="test",
        schedule=schedule,
        outcomes=outcomes,
        makespan=10,
        roles={1: "short", 2: "long"},
    )


class TestTransactionOutcome:
    def test_response_time_inclusive(self):
        outcome = TransactionOutcome(
            tx_id=1, arrival=3, commit_tick=7, restarts=0, waits=0
        )
        assert outcome.response_time == 5


class TestSimulationResult:
    def test_committed_counts_outcomes(self):
        assert _result().committed == 2

    def test_totals(self):
        result = _result()
        assert result.total_restarts == 1
        assert result.total_waits == 5

    def test_throughput(self):
        assert _result().throughput == 0.2

    def test_throughput_of_empty_run_is_zero(self):
        result = _result()
        result.makespan = 0
        assert result.throughput == 0.0

    def test_mean_response_time(self):
        # (5 + 8) / 2
        assert _result().mean_response_time == 6.5

    def test_role_filtered_response_time(self):
        result = _result()
        assert result.mean_response_time_of("short") == 5
        assert result.mean_response_time_of("long") == 8
        assert result.mean_response_time_of("nope") is None


class TestFaultAccounting:
    def _mixed(self):
        from repro.sim.metrics import ABORTED

        txs = [
            Transaction.from_notation(1, "r[x]"),
            Transaction.from_notation(2, "w[y]"),
        ]
        schedule = Schedule.serial([txs[0]])
        outcomes = {
            1: TransactionOutcome(
                tx_id=1, arrival=0, commit_tick=4, restarts=1, waits=2
            ),
            2: TransactionOutcome(
                tx_id=2,
                arrival=0,
                commit_tick=7,
                restarts=3,
                waits=9,
                status=ABORTED,
            ),
        }
        return SimulationResult(
            protocol="test",
            schedule=schedule,
            outcomes=outcomes,
            makespan=5,
        )

    def test_committed_excludes_the_dead(self):
        result = self._mixed()
        assert result.committed == 1
        assert result.aborted == 1
        assert result.survivor_ids == (1,)

    def test_totals_still_count_everyone(self):
        result = self._mixed()
        assert result.total_restarts == 4
        assert result.total_waits == 11

    def test_mean_response_time_over_committed_only(self):
        result = self._mixed()
        assert result.mean_response_time == 5.0

    def test_degradation_summary(self):
        degradation = self._mixed().degradation()
        assert degradation["committed"] == 1
        assert degradation["aborted"] == 1
        assert degradation["restarts"] == 4


class TestWaitPercentiles:
    def test_nearest_rank_small_samples(self):
        from repro.sim.metrics import nearest_rank

        values = [1, 2, 3, 4, 10]
        assert nearest_rank(values, 50) == 3
        assert nearest_rank(values, 90) == 10
        assert nearest_rank(values, 99) == 10
        assert nearest_rank(values, 100) == 10

    def test_nearest_rank_is_order_insensitive(self):
        from repro.sim.metrics import nearest_rank

        assert nearest_rank([10, 1, 4, 2, 3], 50) == 3

    def test_nearest_rank_single_element_any_percentile(self):
        from repro.sim.metrics import nearest_rank

        for percentile in (0.1, 1, 50, 99.9, 100):
            assert nearest_rank([7], percentile) == 7

    def test_nearest_rank_p100_is_exactly_the_maximum(self):
        from repro.sim.metrics import nearest_rank

        values = list(range(1, 42))
        assert nearest_rank(values, 100) == max(values)

    def test_nearest_rank_rejects_out_of_domain_percentiles(self):
        import pytest

        from repro.sim.metrics import nearest_rank

        for percentile in (0, -1, 100.1):
            with pytest.raises(ValueError, match=r"\(0, 100\]"):
                nearest_rank([1, 2, 3], percentile)

    def test_nearest_rank_rejects_empty_samples(self):
        import pytest

        from repro.sim.metrics import nearest_rank

        with pytest.raises(ValueError, match="empty"):
            nearest_rank([], 50)

    def test_wait_percentiles_keys_and_values(self):
        # Bucketed percentiles (repro.obs.hist.Histogram): waits of 2
        # and 3 share the [2, 3] power-of-two bucket, whose upper bound
        # 3 is what every percentile reports.
        result = _result()
        percentiles = result.wait_percentiles()
        assert set(percentiles) == {"p50", "p90", "p99"}
        assert percentiles["p50"] == 3
        assert percentiles["p99"] == 3

    def test_wait_percentiles_clamp_to_observed_maximum(self):
        txs = [Transaction.from_notation(1, "r[x]")]
        outcomes = {
            1: TransactionOutcome(
                tx_id=1, arrival=0, commit_tick=4, restarts=0, waits=5
            ),
        }
        result = SimulationResult(
            protocol="test",
            schedule=Schedule.serial(txs),
            outcomes=outcomes,
            makespan=5,
        )
        # 5 lands in the [4, 7] bucket but the clamp keeps p99 exact.
        assert result.wait_percentiles()["p99"] == 5

    def test_wait_percentiles_of_empty_run(self):
        result = SimulationResult(
            protocol="test",
            schedule=Schedule([], []),
            outcomes={},
            makespan=0,
        )
        assert result.wait_percentiles() == {"p50": 0, "p90": 0, "p99": 0}
