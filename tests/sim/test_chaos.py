"""Chaos-fuzz the simulator with an adversarial scheduler.

A scheduler that waits and aborts (itself or random victims) on a whim
stresses every simulator invariant: restart bookkeeping, backoff,
history filtering, and the final-schedule reconstruction.  Whatever the
decisions, the run must end with every transaction committed exactly
once and a structurally valid schedule.
"""

import random

import pytest

from repro.core.operations import Operation
from repro.core.transactions import Transaction
from repro.errors import SimulationError
from repro.protocols.base import Outcome, Scheduler
from repro.sim.runner import simulate
from repro.workloads.random_schedules import random_transactions


class ChaosScheduler(Scheduler):
    """Grants, waits, or aborts pseudo-randomly (but decreasingly often,
    so runs terminate)."""

    name = "chaos"

    def __init__(self, seed: int) -> None:
        super().__init__()
        self._rng = random.Random(seed)
        self._mischief = 0.35  # probability of not granting, decays

    def _decide(self, op: Operation) -> Outcome:
        roll = self._rng.random()
        self._mischief *= 0.98  # guarantee eventual progress
        if roll < self._mischief / 2:
            return Outcome.wait()
        if roll < self._mischief:
            # Occasionally pick an innocent live victim instead of the
            # requester.
            victims = [
                tx_id
                for tx_id in self.admitted_ids
                if not self.is_committed(tx_id)
                and self.progress(tx_id) > 0
            ]
            victim = (
                self._rng.choice(victims) if victims and self._rng.random() < 0.5
                else op.tx
            )
            if victim == op.tx or self.progress(victim) > 0:
                return Outcome.abort(victim)
        return Outcome.grant()


@pytest.mark.parametrize("seed", range(10))
def test_chaos_runs_end_with_valid_complete_schedules(seed):
    transactions = random_transactions(
        4, (1, 5), 3, write_probability=0.5, seed=seed
    )
    result = simulate(
        transactions, ChaosScheduler(seed), max_ticks=20_000
    )
    # Completeness: every transaction committed exactly once and the
    # schedule validates (Schedule construction enforces exact coverage
    # and program order — reaching here means it passed).
    assert result.committed == len(transactions)
    assert len(result.schedule) == sum(len(tx) for tx in transactions)
    # Accounting is self-consistent.
    for outcome in result.outcomes.values():
        assert outcome.commit_tick >= outcome.arrival
        assert outcome.restarts >= 0
        assert outcome.waits >= 0
    assert result.makespan >= 1


def test_never_granting_scheduler_hits_the_guard():
    class Stonewall(Scheduler):
        name = "stonewall"

        def _decide(self, op: Operation) -> Outcome:
            return Outcome.wait()

    transactions = [Transaction.from_notation(1, "r[x]")]
    with pytest.raises(SimulationError):
        simulate(transactions, Stonewall(), max_ticks=100)


def test_perpetual_self_abort_hits_the_guard():
    class Saboteur(Scheduler):
        name = "saboteur"

        def _decide(self, op: Operation) -> Outcome:
            return Outcome.abort(op.tx)

    transactions = [Transaction.from_notation(1, "r[x] w[x]")]
    with pytest.raises(SimulationError):
        simulate(transactions, Saboteur(), max_ticks=200)
