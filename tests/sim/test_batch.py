"""Tests for batched (optionally multi-process) simulation runs."""

import pytest

from repro.core.transactions import Transaction
from repro.errors import SimulationError
from repro.protocols import PROTOCOL_NAMES, make_scheduler
from repro.parallel.executor import CRASH_ONCE_ENV, shutdown_pools
from repro.sim.batch import (
    BatchSummary,
    SimulationTask,
    run_batch,
    run_task,
    simulate_batch,
    summarize_batch,
)
from repro.sim.runner import simulate
from repro.specs.builders import uniform_spec


def _txs():
    return (
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "w[x] r[y]"),
        Transaction.from_notation(3, "r[y] w[y]"),
    )


def _tasks(protocols=("2pl", "sgt"), seeds=(0, 1)):
    txs = _txs()
    spec = uniform_spec(txs, 1)
    return [
        SimulationTask(
            transactions=txs,
            protocol=name,
            spec=spec,
            roles={1: "short"},
            tag=(seed, name),
        )
        for seed in seeds
        for name in protocols
    ]


class TestMakeScheduler:
    def test_every_canonical_name_constructs(self):
        txs = _txs()
        spec = uniform_spec(txs, 1)
        for name in PROTOCOL_NAMES:
            assert make_scheduler(name, spec) is not None

    def test_strict_2pl_alias(self):
        assert type(make_scheduler("strict-2pl")) is type(
            make_scheduler("2pl")
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("mvcc")

    def test_spec_required_for_relative_protocols(self):
        with pytest.raises(ValueError):
            make_scheduler("rsgt")


class TestRunTask:
    def test_matches_direct_simulation(self):
        task = _tasks()[0]
        direct = simulate(
            list(task.transactions),
            make_scheduler(task.protocol, task.spec),
            backoff=task.backoff,
        )
        result = run_task(task)
        assert result.schedule == direct.schedule
        assert result.roles == {1: "short"}


class TestRunBatch:
    def test_results_in_task_order(self):
        tasks = _tasks()
        results = run_batch(tasks)
        assert len(results) == len(tasks)
        for task, result in zip(tasks, results):
            assert result.protocol == make_scheduler(
                task.protocol, task.spec
            ).name

    def test_parallel_batch_identical_to_serial(self):
        tasks = _tasks(protocols=("2pl", "sgt", "rsgt"), seeds=(0, 1))
        serial = run_batch(tasks)
        parallel = run_batch(tasks, jobs=2)
        for left, right in zip(serial, parallel):
            assert left.schedule == right.schedule
            assert left.outcomes == right.outcomes

    def test_failure_propagates(self):
        task = _tasks()[0]
        doomed = SimulationTask(
            transactions=task.transactions,
            protocol=task.protocol,
            spec=task.spec,
            max_ticks=1,
        )
        with pytest.raises(SimulationError):
            run_batch([task, doomed])


class TestSimulateBatch:
    def test_failed_slot_becomes_none(self):
        task = _tasks()[0]
        doomed = SimulationTask(
            transactions=task.transactions,
            protocol=task.protocol,
            spec=task.spec,
            max_ticks=1,
        )
        results = simulate_batch([task, doomed, task])
        assert results[0] is not None
        assert results[1] is None
        assert results[2] is not None

    def test_parallel_matches_serial(self):
        tasks = _tasks()
        serial = simulate_batch(tasks)
        parallel = simulate_batch(tasks, jobs=2)
        assert [r.schedule for r in serial] == [
            r.schedule for r in parallel
        ]


class TestSummarizeBatch:
    def test_counts_every_run(self):
        tasks = _tasks()
        summary = summarize_batch(tasks)
        assert summary.runs == len(tasks)
        assert summary.errors == 0
        assert len(summary.run_digests) == len(tasks)

    def test_failed_run_counted_not_raised(self):
        task = _tasks()[0]
        doomed = SimulationTask(
            transactions=task.transactions,
            protocol=task.protocol,
            spec=task.spec,
            max_ticks=1,
        )
        summary = summarize_batch([task, doomed, task])
        assert summary.runs == 3
        assert summary.errors == 1

    def test_parallel_summary_byte_identical_to_serial(self):
        import json

        tasks = _tasks(protocols=("2pl", "sgt", "rsgt"), seeds=(0, 1, 2))
        serial = summarize_batch(tasks)
        for jobs in (2, 4):
            parallel = summarize_batch(tasks, jobs=jobs)
            assert json.dumps(
                parallel.to_dict(), sort_keys=True
            ) == json.dumps(serial.to_dict(), sort_keys=True)

    def test_digest_is_chunking_invariant(self):
        tasks = _tasks(protocols=("2pl", "sgt"), seeds=(0, 1, 2))
        whole = BatchSummary()
        for task in tasks:
            whole.add(run_task(task))
        left, right = BatchSummary(), BatchSummary()
        for task in tasks[:2]:
            left.add(run_task(task))
        for task in tasks[2:]:
            right.add(run_task(task))
        assert left.merge(right).digest == whole.digest

    def test_summary_survives_one_worker_crash(self, tmp_path, monkeypatch):
        tasks = _tasks(protocols=("2pl", "sgt", "rsgt"), seeds=(0, 1, 2))
        serial = summarize_batch(tasks)
        shutdown_pools()
        marker = tmp_path / "batch-crash-once"
        monkeypatch.setenv(CRASH_ONCE_ENV, str(marker))
        try:
            parallel = summarize_batch(tasks, jobs=4)
        finally:
            shutdown_pools()
        assert marker.exists()
        assert parallel.to_dict() == serial.to_dict()
