"""Contract tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ModelError,
            errors.InvalidTransactionError,
            errors.InvalidScheduleError,
            errors.SpecError,
            errors.InvalidSpecError,
            errors.MissingSpecError,
            errors.NotationError,
            errors.GraphError,
            errors.CycleError,
            errors.EngineError,
            errors.TransactionAborted,
            errors.ProtocolError,
            errors.SimulationError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_model_errors_grouped(self):
        assert issubclass(errors.InvalidTransactionError, errors.ModelError)
        assert issubclass(errors.InvalidScheduleError, errors.ModelError)

    def test_spec_errors_grouped(self):
        assert issubclass(errors.InvalidSpecError, errors.SpecError)
        assert issubclass(errors.MissingSpecError, errors.SpecError)

    def test_cycle_error_carries_witness(self):
        exc = errors.CycleError("boom", cycle=[1, 2, 1])
        assert exc.cycle == [1, 2, 1]
        assert issubclass(errors.CycleError, errors.GraphError)

    def test_cycle_error_witness_optional(self):
        assert errors.CycleError("boom").cycle is None

    def test_single_except_clause_catches_the_library(self):
        # The promise the module docstring makes.
        from repro import Transaction

        with pytest.raises(errors.ReproError):
            Transaction(0, ["r[x]"])
