"""Contract tests for the exception hierarchy."""

import pickle

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ModelError,
            errors.InvalidTransactionError,
            errors.InvalidScheduleError,
            errors.SpecError,
            errors.InvalidSpecError,
            errors.MissingSpecError,
            errors.NotationError,
            errors.GraphError,
            errors.CycleError,
            errors.EngineError,
            errors.TransactionAborted,
            errors.ProtocolError,
            errors.SimulationError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_model_errors_grouped(self):
        assert issubclass(errors.InvalidTransactionError, errors.ModelError)
        assert issubclass(errors.InvalidScheduleError, errors.ModelError)

    def test_spec_errors_grouped(self):
        assert issubclass(errors.InvalidSpecError, errors.SpecError)
        assert issubclass(errors.MissingSpecError, errors.SpecError)

    def test_cycle_error_carries_witness(self):
        exc = errors.CycleError("boom", cycle=[1, 2, 1])
        assert exc.cycle == [1, 2, 1]
        assert issubclass(errors.CycleError, errors.GraphError)

    def test_cycle_error_witness_optional(self):
        assert errors.CycleError("boom").cycle is None

    def test_single_except_clause_catches_the_library(self):
        # The promise the module docstring makes.
        from repro import Transaction

        with pytest.raises(errors.ReproError):
            Transaction(0, ["r[x]"])

    def test_fault_errors_grouped(self):
        assert issubclass(errors.FaultError, errors.ReproError)
        assert issubclass(errors.FaultPlanError, errors.FaultError)
        assert issubclass(errors.CrashedStoreError, errors.EngineError)
        assert issubclass(errors.LivelockError, errors.SimulationError)


class TestPicklability:
    """Every exception must survive a process boundary intact —
    ParallelExecutor workers re-raise them in the parent."""

    @pytest.mark.parametrize(
        "exc",
        [
            errors.ReproError("boom"),
            errors.ModelError("boom"),
            errors.InvalidTransactionError("boom"),
            errors.InvalidScheduleError("boom"),
            errors.SpecError("boom"),
            errors.InvalidSpecError("boom"),
            errors.MissingSpecError("boom"),
            errors.NotationError("boom"),
            errors.GraphError("boom"),
            errors.CycleError("boom"),
            errors.CycleError("boom", cycle=[1, 2, 1]),
            errors.EngineError("boom"),
            errors.TransactionAborted("boom"),
            errors.CrashedStoreError("boom"),
            errors.ProtocolError("boom"),
            errors.SimulationError("boom"),
            errors.LivelockError("boom"),
            errors.LivelockError("boom", waiting=(1, 2, 3)),
            errors.ParallelExecutionError("boom"),
            errors.FaultError("boom"),
            errors.FaultPlanError("boom"),
        ],
        ids=lambda exc: type(exc).__name__ + str(len(exc.args)),
    )
    def test_round_trip(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert clone.args == exc.args
        assert str(clone) == str(exc)

    def test_cycle_error_witness_survives_pickling(self):
        exc = errors.CycleError("boom", cycle=[3, 1, 3])
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.cycle == [3, 1, 3]

    def test_livelock_error_waiters_survive_pickling(self):
        exc = errors.LivelockError("stuck", waiting=(2, 5))
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.waiting == (2, 5)
