"""Unit tests for exhaustive interleaving enumeration."""

from repro.core.transactions import Transaction
from repro.workloads.enumerate import all_interleavings, count_interleavings


def _txs(*lengths):
    return [
        Transaction(i + 1, [f"w[x{i}_{j}]" for j in range(length)])
        for i, length in enumerate(lengths)
    ]


class TestCount:
    def test_multinomial(self):
        assert count_interleavings(_txs(2, 2)) == 6
        assert count_interleavings(_txs(2, 3)) == 10
        assert count_interleavings(_txs(1, 1, 1)) == 6
        assert count_interleavings(_txs(4, 3, 3)) == 4200  # Figure 1 sizes

    def test_single_transaction(self):
        assert count_interleavings(_txs(5)) == 1


class TestEnumeration:
    def test_yields_exactly_the_count(self):
        txs = _txs(2, 2, 1)
        assert sum(1 for _ in all_interleavings(txs)) == count_interleavings(
            txs
        )

    def test_all_distinct(self):
        txs = _txs(2, 3)
        schedules = list(all_interleavings(txs))
        assert len(schedules) == len(set(schedules))

    def test_all_preserve_program_order(self):
        txs = _txs(3, 2)
        for schedule in all_interleavings(txs):
            for tx in txs:
                positions = [schedule.position(op) for op in tx]
                assert positions == sorted(positions)

    def test_deterministic_order(self):
        txs = _txs(2, 2)
        first = [str(s) for s in all_interleavings(txs)]
        second = [str(s) for s in all_interleavings(txs)]
        assert first == second
        # Lexicographic by transaction id: the serial T1 T2 comes first.
        assert first[0].startswith("w1[")

    def test_serial_schedules_included(self):
        txs = _txs(2, 2)
        from repro.core.schedules import Schedule

        schedules = set(all_interleavings(txs))
        assert Schedule.serial(txs, [1, 2]) in schedules
        assert Schedule.serial(txs, [2, 1]) in schedules
