"""Unit tests for exhaustive interleaving enumeration."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.transactions import Transaction
from repro.errors import InvalidTransactionError
from repro.workloads.enumerate import (
    all_interleavings,
    count_interleavings,
    interleaving_blocks,
    interleavings_block,
    rank_interleaving,
    unrank_interleaving,
)


def _txs(*lengths):
    return [
        Transaction(i + 1, [f"w[x{i}_{j}]" for j in range(length)])
        for i, length in enumerate(lengths)
    ]


class TestCount:
    def test_multinomial(self):
        assert count_interleavings(_txs(2, 2)) == 6
        assert count_interleavings(_txs(2, 3)) == 10
        assert count_interleavings(_txs(1, 1, 1)) == 6
        assert count_interleavings(_txs(4, 3, 3)) == 4200  # Figure 1 sizes

    def test_single_transaction(self):
        assert count_interleavings(_txs(5)) == 1


class TestEnumeration:
    def test_yields_exactly_the_count(self):
        txs = _txs(2, 2, 1)
        assert sum(1 for _ in all_interleavings(txs)) == count_interleavings(
            txs
        )

    def test_all_distinct(self):
        txs = _txs(2, 3)
        schedules = list(all_interleavings(txs))
        assert len(schedules) == len(set(schedules))

    def test_all_preserve_program_order(self):
        txs = _txs(3, 2)
        for schedule in all_interleavings(txs):
            for tx in txs:
                positions = [schedule.position(op) for op in tx]
                assert positions == sorted(positions)

    def test_deterministic_order(self):
        txs = _txs(2, 2)
        first = [str(s) for s in all_interleavings(txs)]
        second = [str(s) for s in all_interleavings(txs)]
        assert first == second
        # Lexicographic by transaction id: the serial T1 T2 comes first.
        assert first[0].startswith("w1[")

    def test_serial_schedules_included(self):
        txs = _txs(2, 2)
        from repro.core.schedules import Schedule

        schedules = set(all_interleavings(txs))
        assert Schedule.serial(txs, [1, 2]) in schedules
        assert Schedule.serial(txs, [2, 1]) in schedules


class TestGuards:
    def test_empty_transaction_set_counts_one(self):
        assert count_interleavings([]) == 1

    def test_empty_transaction_set_yields_one_empty_schedule(self):
        schedules = list(all_interleavings([]))
        assert len(schedules) == 1
        assert list(schedules[0].operations) == []

    def test_zero_op_transactions_skip_cleanly(self):
        # Transaction itself refuses an empty program, but the
        # enumeration guards against empty programs arriving through
        # other construction paths: they contribute a factor of one.
        class EmptyTx:
            tx_id = 2
            operations = ()

        txs = [_txs(2)[0], EmptyTx(), Transaction(3, ["w[y]", "r[y]"])]
        assert count_interleavings(txs) == 6

    def test_duplicate_tx_id_rejected(self):
        txs = [
            Transaction(1, ["w[x]"]),
            Transaction(1, ["w[y]"]),
        ]
        with pytest.raises(InvalidTransactionError):
            count_interleavings(txs)
        with pytest.raises(InvalidTransactionError):
            next(all_interleavings(txs))


class TestRankUnrank:
    def test_rank_matches_enumeration_position(self):
        txs = _txs(2, 3, 1)
        for position, schedule in enumerate(all_interleavings(txs)):
            assert rank_interleaving(schedule) == position

    def test_unrank_matches_enumeration(self):
        txs = _txs(3, 2, 2)
        for position, schedule in enumerate(all_interleavings(txs)):
            assert unrank_interleaving(txs, position) == schedule

    def test_out_of_range_rejected(self):
        txs = _txs(2, 2)
        with pytest.raises(IndexError):
            unrank_interleaving(txs, count_interleavings(txs))
        with pytest.raises(IndexError):
            unrank_interleaving(txs, -1)

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_unrank_rank_roundtrip(self, data):
        lengths = data.draw(
            st.lists(st.integers(1, 3), min_size=1, max_size=4),
            label="lengths",
        )
        txs = _txs(*lengths)
        index = data.draw(
            st.integers(0, count_interleavings(txs) - 1), label="index"
        )
        schedule = unrank_interleaving(txs, index)
        assert rank_interleaving(schedule) == index
        assert unrank_interleaving(txs, rank_interleaving(schedule)) == (
            schedule
        )


class TestBlocks:
    def test_block_concatenation_reproduces_enumeration(self):
        txs = _txs(2, 3, 2)
        full = list(all_interleavings(txs))
        for workers in (1, 2, 3, 5, 8):
            blocks = interleaving_blocks(txs, workers)
            joined = [
                schedule
                for start, stop in blocks
                for schedule in interleavings_block(txs, start, stop)
            ]
            assert joined == full, f"workers={workers}"

    def test_blocks_are_contiguous_and_cover(self):
        txs = _txs(3, 3)
        total = count_interleavings(txs)
        blocks = interleaving_blocks(txs, 4)
        assert blocks[0][0] == 0
        assert blocks[-1][1] == total
        for (_, stop), (start, _) in zip(blocks, blocks[1:]):
            assert stop == start

    def test_more_workers_than_schedules(self):
        txs = _txs(1, 1)
        blocks = interleaving_blocks(txs, 10)
        joined = [
            schedule
            for start, stop in blocks
            for schedule in interleavings_block(txs, start, stop)
        ]
        assert joined == list(all_interleavings(txs))

    def test_block_starts_at_unranked_schedule(self):
        txs = _txs(2, 2, 2)
        for start, stop in interleaving_blocks(txs, 3):
            if start == stop:
                continue
            first = next(iter(interleavings_block(txs, start, stop)))
            assert first == unrank_interleaving(txs, start)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_window_matches_enumeration_slice(self, data):
        lengths = data.draw(
            st.lists(st.integers(1, 3), min_size=2, max_size=3),
            label="lengths",
        )
        txs = _txs(*lengths)
        total = count_interleavings(txs)
        start = data.draw(st.integers(0, total), label="start")
        stop = data.draw(st.integers(start, total), label="stop")
        window = list(interleavings_block(txs, start, stop))
        assert window == list(all_interleavings(txs))[start:stop]

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_block_iteration_equals_per_rank_unranking(self, data):
        # The parallel sweep contract: a worker entering the
        # enumeration tree at its block-start rank sees exactly the
        # schedules unrank_interleaving produces rank by rank.
        lengths = data.draw(
            st.lists(st.integers(1, 3), min_size=2, max_size=4),
            label="lengths",
        )
        txs = _txs(*lengths)
        total = count_interleavings(txs)
        start = data.draw(st.integers(0, total), label="start")
        stop = data.draw(st.integers(start, total), label="stop")
        window = list(interleavings_block(txs, start, stop))
        assert window == [
            unrank_interleaving(txs, rank) for rank in range(start, stop)
        ]
