"""Unit tests for the CAD teams workload."""

import pytest

from repro.core.schedules import Schedule
from repro.engine.executor import ScheduleExecutor
from repro.workloads.cad import CadWorkload


@pytest.fixture()
def bundle():
    return CadWorkload(
        n_teams=2,
        designers_per_team=2,
        parts_per_team=2,
        edits_per_designer=2,
        seed=0,
    ).build()


class TestStructure:
    def test_designer_count(self, bundle):
        assert len(bundle.transactions) == 4
        assert all(role == "designer" for role in bundle.roles.values())

    def test_designers_edit_own_team_parts(self, bundle):
        team_of = bundle.metadata["team_of"]
        for tx in bundle.transactions:
            team = team_of[tx.tx_id]
            for op in tx:
                if op.obj == "interface":
                    continue
                assert op.obj.startswith(f"t{team}p")

    def test_every_designer_reads_the_interface_last(self, bundle):
        for tx in bundle.transactions:
            assert tx[len(tx) - 1].obj == "interface"
            assert tx[len(tx) - 1].is_read


class TestMultilevelSpec:
    def test_teammates_see_finest_views(self, bundle):
        team_of = bundle.metadata["team_of"]
        for a in bundle.transactions:
            for b in bundle.transactions:
                if a.tx_id == b.tx_id:
                    continue
                if team_of[a.tx_id] == team_of[b.tx_id]:
                    assert bundle.spec.atomicity(a.tx_id, b.tx_id).is_finest

    def test_outsiders_see_part_boundaries(self, bundle):
        team_of = bundle.metadata["team_of"]
        cross = [
            (a, b)
            for a in bundle.transactions
            for b in bundle.transactions
            if a.tx_id != b.tx_id and team_of[a.tx_id] != team_of[b.tx_id]
        ]
        assert cross
        for a, b in cross:
            view = bundle.spec.atomicity(a.tx_id, b.tx_id)
            # Cuts at part boundaries (even positions) plus before the
            # interface read: never inside a read+write edit pair.
            assert all(cut % 2 == 0 for cut in view.breakpoints)
            assert len(a) - 1 in view.breakpoints

    def test_spec_units_never_split_an_edit(self, bundle):
        for tx_pair in bundle.spec.pairs():
            view = bundle.spec.atomicity(*tx_pair)
            if view.is_finest:
                continue
            tx = bundle.spec.transactions[tx_pair[0]]
            for unit in view.units:
                ops = unit.operations(tx)
                if len(ops) >= 2:
                    # A unit that contains a write also contains the
                    # read of the same edit just before it.
                    for first, second in zip(ops, ops[1:]):
                        if second.is_write:
                            assert first.obj == second.obj


class TestSemantics:
    def test_revisions_count_edits(self, bundle):
        schedule = Schedule.serial(bundle.transactions)
        trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
            schedule
        )
        total_edits = sum(
            1 for tx in bundle.transactions for op in tx if op.is_write
        )
        assert sum(trace.final_state.values()) == total_edits

    def test_interface_untouched(self, bundle):
        schedule = Schedule.serial(bundle.transactions)
        trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
            schedule
        )
        assert trace.final_state["interface"] == 0


class TestValidation:
    def test_rejects_zero_teams(self):
        with pytest.raises(ValueError):
            CadWorkload(n_teams=0)

    def test_rejects_zero_edits(self):
        with pytest.raises(ValueError):
            CadWorkload(edits_per_designer=0)
