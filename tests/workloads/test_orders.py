"""Unit + integration tests for the order-processing workload."""

import pytest

from repro.core.rsg import is_relatively_serializable
from repro.core.schedules import Schedule
from repro.engine.executor import ScheduleExecutor
from repro.protocols import RSGTScheduler, TwoPhaseLockingScheduler
from repro.sim.runner import simulate_bundle
from repro.workloads.orders import OrderProcessingWorkload


@pytest.fixture()
def bundle():
    return OrderProcessingWorkload(
        n_districts=2,
        n_items=3,
        n_new_orders=3,
        n_payments=1,
        seed=0,
    ).build()


def _orders_placed_per_district(bundle):
    placed = {d: 0 for d in range(bundle.metadata["n_districts"])}
    for tx in bundle.transactions_with_role("new-order"):
        district = int(tx[0].obj.split("_")[0][1:])
        placed[district] += 1
    return placed


class TestStructure:
    def test_roles(self, bundle):
        roles = {role for role in bundle.roles.values()}
        assert roles == {"new-order", "payment", "delivery", "stock-scan"}

    def test_delivery_sweeps_every_district(self, bundle):
        (delivery,) = bundle.transactions_with_role("delivery")
        touched = {
            obj for obj in delivery.objects if obj.endswith("_pending")
        }
        assert touched == {"d0_pending", "d1_pending"}

    def test_scan_reads_every_item(self, bundle):
        (scan,) = bundle.transactions_with_role("stock-scan")
        assert scan.read_set == {"s0", "s1", "s2"}
        assert not scan.write_set


class TestSpec:
    def test_delivery_has_per_district_donate_points(self, bundle):
        (delivery,) = bundle.transactions_with_role("delivery")
        for other in bundle.transactions:
            if other.tx_id == delivery.tx_id:
                continue
            view = bundle.spec.atomicity(delivery.tx_id, other.tx_id)
            assert view.breakpoints == {4}
            assert all(unit.size == 4 for unit in view.units)

    def test_scan_relaxed_towards_shorts_only(self, bundle):
        (scan,) = bundle.transactions_with_role("stock-scan")
        (delivery,) = bundle.transactions_with_role("delivery")
        for short in bundle.transactions_with_role("new-order"):
            assert bundle.spec.atomicity(scan.tx_id, short.tx_id).is_finest
        assert bundle.spec.atomicity(scan.tx_id, delivery.tx_id).is_absolute

    def test_shorts_are_absolute(self, bundle):
        for short in bundle.transactions_with_role("new-order"):
            for other in bundle.transactions:
                if other.tx_id == short.tx_id:
                    continue
                assert bundle.spec.atomicity(
                    short.tx_id, other.tx_id
                ).is_absolute


class TestInvariants:
    def _check(self, bundle, schedule):
        trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
            schedule
        )
        placed = _orders_placed_per_district(bundle)
        for district, count in placed.items():
            pending = trace.final_state[f"d{district}_pending"]
            delivered = trace.final_state[f"d{district}_delivered"]
            assert pending + delivered == count, (district, schedule)
        total_stock = sum(
            trace.final_state[f"s{i}"]
            for i in range(bundle.metadata["n_items"])
        )
        expected = (
            bundle.metadata["initial_stock"] * bundle.metadata["n_items"]
            - len(bundle.transactions_with_role("new-order"))
        )
        assert total_stock == expected

    def test_serial_execution_preserves_bookkeeping(self, bundle):
        self._check(bundle, Schedule.serial(bundle.transactions))

    @pytest.mark.parametrize("seed", range(4))
    def test_rsgt_runs_preserve_bookkeeping(self, seed):
        bundle = OrderProcessingWorkload(
            n_districts=2, n_items=3, n_new_orders=3, n_payments=1,
            seed=seed,
        ).build()
        result = simulate_bundle(bundle, RSGTScheduler(bundle.spec))
        assert is_relatively_serializable(result.schedule, bundle.spec)
        self._check(bundle, result.schedule)

    def test_2pl_runs_preserve_bookkeeping(self, bundle):
        result = simulate_bundle(bundle, TwoPhaseLockingScheduler())
        self._check(bundle, result.schedule)


class TestConcurrencyGain:
    def test_rsgt_beats_2pl_on_new_order_latency(self):
        import statistics

        gains = []
        for seed in range(4):
            bundle = OrderProcessingWorkload(
                n_districts=3,
                n_items=3,
                n_new_orders=4,
                n_payments=2,
                seed=seed,
            ).build()
            strict = simulate_bundle(bundle, TwoPhaseLockingScheduler())
            relaxed = simulate_bundle(bundle, RSGTScheduler(bundle.spec))
            gains.append(
                strict.mean_response_time_of("new-order")
                - relaxed.mean_response_time_of("new-order")
            )
        assert statistics.mean(gains) >= 0


class TestValidation:
    def test_rejects_zero_districts(self):
        with pytest.raises(ValueError):
            OrderProcessingWorkload(n_districts=0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            OrderProcessingWorkload(n_new_orders=-1)
