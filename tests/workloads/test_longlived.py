"""Unit tests for the long-lived transaction workload."""

import pytest

from repro.workloads.longlived import LongLivedWorkload


@pytest.fixture()
def bundle():
    return LongLivedWorkload(
        n_objects=4, n_long=1, n_short=3, short_ops=1, seed=0
    ).build()


class TestStructure:
    def test_roles(self, bundle):
        assert len(bundle.transactions_with_role("long")) == 1
        assert len(bundle.transactions_with_role("short")) == 3

    def test_long_transaction_scans_everything(self, bundle):
        (long_tx,) = bundle.transactions_with_role("long")
        assert long_tx.objects == set(bundle.metadata["objects"])
        assert len(long_tx) == 8  # read+write per object

    def test_short_transactions_touch_few_objects(self, bundle):
        for tx in bundle.transactions_with_role("short"):
            assert len(tx.objects) == 1
            assert len(tx) == 2


class TestSpec:
    def test_long_exposes_per_object_breakpoints(self, bundle):
        (long_tx,) = bundle.transactions_with_role("long")
        for short in bundle.transactions_with_role("short"):
            view = bundle.spec.atomicity(long_tx.tx_id, short.tx_id)
            assert view.breakpoints == {2, 4, 6}
            # Units are exactly the read+write pairs.
            assert all(unit.size == 2 for unit in view.units)

    def test_shorts_remain_absolute(self, bundle):
        (long_tx,) = bundle.transactions_with_role("long")
        for short in bundle.transactions_with_role("short"):
            assert bundle.spec.atomicity(
                short.tx_id, long_tx.tx_id
            ).is_absolute

    def test_absolute_variant_has_absolute_spec(self):
        bundle = LongLivedWorkload(
            n_objects=3, n_long=1, n_short=2, relative=False, seed=0
        ).build()
        assert bundle.spec.is_absolute
        assert bundle.metadata["relative"] is False


class TestValidation:
    def test_needs_some_transaction(self):
        with pytest.raises(ValueError):
            LongLivedWorkload(n_long=0, n_short=0)

    def test_short_ops_positive(self):
        with pytest.raises(ValueError):
            LongLivedWorkload(short_ops=0)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            LongLivedWorkload(n_objects=0)
