"""Unit tests for the random workload generators."""

import pytest

from repro.workloads.random_schedules import (
    random_interleaving,
    random_schedules,
    random_transactions,
)


class TestRandomTransactions:
    def test_shape(self):
        txs = random_transactions(3, 4, n_objects=2, seed=0)
        assert len(txs) == 3
        assert [tx.tx_id for tx in txs] == [1, 2, 3]
        assert all(len(tx) == 4 for tx in txs)

    def test_length_range(self):
        txs = random_transactions(10, (1, 3), n_objects=2, seed=1)
        assert all(1 <= len(tx) <= 3 for tx in txs)

    def test_objects_from_pool(self):
        txs = random_transactions(3, 5, n_objects=2, seed=2)
        objects = {op.obj for tx in txs for op in tx}
        assert objects <= {"x0", "x1"}

    def test_write_probability_extremes(self):
        all_writes = random_transactions(
            2, 5, 2, write_probability=1.0, seed=3
        )
        assert all(op.is_write for tx in all_writes for op in tx)
        all_reads = random_transactions(
            2, 5, 2, write_probability=0.0, seed=3
        )
        assert all(op.is_read for tx in all_reads for op in tx)

    def test_deterministic_for_seed(self):
        a = random_transactions(3, 4, 3, seed=7)
        b = random_transactions(3, 4, 3, seed=7)
        assert a == b
        c = random_transactions(3, 4, 3, seed=8)
        assert a != c

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_transactions": 0, "ops_per_transaction": 1, "n_objects": 1},
            {"n_transactions": 1, "ops_per_transaction": 0, "n_objects": 1},
            {"n_transactions": 1, "ops_per_transaction": 1, "n_objects": 0},
            {
                "n_transactions": 1,
                "ops_per_transaction": 1,
                "n_objects": 1,
                "write_probability": 2.0,
            },
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            random_transactions(**kwargs, seed=0)


class TestRandomInterleaving:
    def test_valid_schedule(self):
        txs = random_transactions(3, 3, 2, seed=0)
        schedule = random_interleaving(txs, seed=1)
        assert len(schedule) == 9
        for tx in txs:
            positions = [schedule.position(op) for op in tx]
            assert positions == sorted(positions)

    def test_deterministic_for_seed(self):
        txs = random_transactions(3, 3, 2, seed=0)
        assert random_interleaving(txs, seed=5) == random_interleaving(
            txs, seed=5
        )

    def test_different_seeds_usually_differ(self):
        txs = random_transactions(3, 4, 2, seed=0)
        schedules = {
            str(random_interleaving(txs, seed=s)) for s in range(10)
        }
        assert len(schedules) > 1

    def test_batch_generation(self):
        txs = random_transactions(2, 2, 2, seed=0)
        batch = random_schedules(txs, count=5, seed=0)
        assert len(batch) == 5
