"""Unit tests for the banking workload (Lynch's motivating scenario)."""

import pytest

from repro.core.schedules import Schedule
from repro.engine.executor import ScheduleExecutor
from repro.workloads.banking import BankingWorkload


@pytest.fixture()
def bundle():
    return BankingWorkload(
        n_families=2,
        accounts_per_family=2,
        customers_per_family=2,
        transfers_per_customer=1,
        seed=0,
    ).build()


class TestStructure:
    def test_roles_present(self, bundle):
        roles = set(bundle.roles.values())
        assert roles == {"customer", "credit-audit", "bank-audit"}

    def test_transaction_counts(self, bundle):
        assert len(bundle.transactions_with_role("customer")) == 4
        assert len(bundle.transactions_with_role("credit-audit")) == 2
        assert len(bundle.transactions_with_role("bank-audit")) == 1

    def test_customers_stay_in_family(self, bundle):
        family_of = bundle.metadata["family_of"]
        for tx in bundle.transactions_with_role("customer"):
            family = family_of[tx.tx_id]
            assert all(obj.startswith(f"f{family}") for obj in tx.objects)

    def test_bank_audit_reads_everything(self, bundle):
        (audit,) = bundle.transactions_with_role("bank-audit")
        assert audit.read_set == set(bundle.initial_state)
        assert not audit.write_set


class TestSpec:
    def test_bank_audit_absolute_everywhere(self, bundle):
        (audit,) = bundle.transactions_with_role("bank-audit")
        for other in bundle.transactions:
            if other.tx_id == audit.tx_id:
                continue
            assert bundle.spec.atomicity(audit.tx_id, other.tx_id).is_absolute
            assert bundle.spec.atomicity(other.tx_id, audit.tx_id).is_absolute

    def test_same_family_customers_interleave_freely(self, bundle):
        family_of = bundle.metadata["family_of"]
        customers = bundle.transactions_with_role("customer")
        pairs = [
            (a, b)
            for a in customers
            for b in customers
            if a.tx_id != b.tx_id
            and family_of[a.tx_id] == family_of[b.tx_id]
        ]
        assert pairs
        for a, b in pairs:
            assert bundle.spec.atomicity(a.tx_id, b.tx_id).is_finest

    def test_customer_atomic_to_same_family_credit_audit(self, bundle):
        family_of = bundle.metadata["family_of"]
        for audit in bundle.transactions_with_role("credit-audit"):
            for customer in bundle.transactions_with_role("customer"):
                view = bundle.spec.atomicity(customer.tx_id, audit.tx_id)
                if family_of[customer.tx_id] == family_of[audit.tx_id]:
                    assert view.is_absolute
                else:
                    assert view.is_finest


class TestSemantics:
    def test_serial_execution_preserves_total(self, bundle):
        schedule = Schedule.serial(bundle.transactions)
        trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
            schedule
        )
        assert (
            sum(trace.final_state.values())
            == bundle.metadata["expected_total"]
        )

    def test_serial_bank_audit_sees_expected_total(self, bundle):
        schedule = Schedule.serial(bundle.transactions)
        trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
            schedule
        )
        (audit,) = bundle.transactions_with_role("bank-audit")
        view = trace.transaction_view(audit.tx_id)
        assert sum(view.values()) == bundle.metadata["expected_total"]

    def test_any_interleaving_preserves_total(self, bundle):
        # Transfers are atomic increments/decrements, so the grand total
        # is conserved under arbitrary interleavings (the semantic
        # knowledge justifying the relaxed spec).
        from repro.workloads.random_schedules import random_interleaving

        for seed in range(3):
            schedule = random_interleaving(bundle.transactions, seed=seed)
            trace = ScheduleExecutor(
                bundle.initial_state, bundle.semantics
            ).run(schedule)
            assert (
                sum(trace.final_state.values())
                == bundle.metadata["expected_total"]
            )


class TestValidation:
    def test_rejects_transfers_with_single_account(self):
        with pytest.raises(ValueError):
            BankingWorkload(accounts_per_family=1, transfers_per_customer=1)

    def test_rejects_empty_bank(self):
        with pytest.raises(ValueError):
            BankingWorkload(n_families=0)
