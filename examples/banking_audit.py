#!/usr/bin/env python3
"""Banking families with credit and bank audits (the paper's first
motivating scenario, after [Lyn83]).

Customers move money inside their family, credit audits scan one family,
the bank audit scans everything.  The relative atomicity specification
says: customers in one family interleave freely, audits see the
transactions they care about atomically.

The demo shows the consequence at the *data* level:

* an accepted (relatively serializable, NOT conflict-serializable)
  schedule keeps every audit total consistent;
* a schedule the RSG test rejects really does tear the bank audit.

Finally the four online protocols race on the same workload.

Run:  python examples/banking_audit.py
"""

from repro import RelativeSerializationGraph, Schedule, is_conflict_serializable
from repro.analysis.protocol_comparison import compare_protocols
from repro.analysis.tables import format_table
from repro.engine.executor import ScheduleExecutor
from repro.workloads.banking import BankingWorkload


def audit_totals(bundle, schedule):
    """Execute ``schedule`` and return (bank-audit total, final total)."""
    trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
        schedule
    )
    (audit,) = bundle.transactions_with_role("bank-audit")
    view = trace.transaction_view(audit.tx_id)
    return sum(view.values()), sum(trace.final_state.values())


def main() -> None:
    workload = BankingWorkload(
        n_families=2,
        accounts_per_family=2,
        customers_per_family=1,
        transfers_per_customer=1,
        seed=1,
    )
    bundle = workload.build()
    expected = bundle.metadata["expected_total"]
    print(f"{len(bundle.transactions)} transactions over "
          f"{len(bundle.initial_state)} accounts; expected total {expected}")
    for tx in bundle.transactions:
        print(f"  {tx}   [{bundle.roles[tx.tx_id]}]")

    customers = bundle.transactions_with_role("customer")
    (bank_audit,) = bundle.transactions_with_role("bank-audit")
    credit_a, credit_b = bundle.transactions_with_role("credit-audit")

    # --- An accepted interleaving: audits run around intact transfers.
    good = Schedule.serial(
        bundle.transactions,
        [customers[0].tx_id, credit_a.tx_id, bank_audit.tx_id,
         credit_b.tx_id, customers[1].tx_id],
    )
    rsg = RelativeSerializationGraph(good, bundle.spec)
    audit_sum, final_sum = audit_totals(bundle, good)
    print(f"\naccepted schedule: audit saw {audit_sum}, final total "
          f"{final_sum} (expected {expected}); "
          f"relatively serializable: {rsg.is_acyclic}")

    # --- A torn interleaving: the transfer brackets the audit's scan.
    c = customers[0]
    order = (
        list(c.operations[:3])  # r[src] r[dst] w[src]: money in flight
        + list(bank_audit.operations)  # the audit scans mid-transfer
        + list(c.operations[3:])  # w[dst] lands afterwards
        + [op for tx in (credit_a, credit_b, customers[1]) for op in tx]
    )
    torn = Schedule(bundle.transactions, order)
    rsg = RelativeSerializationGraph(torn, bundle.spec)
    audit_sum, final_sum = audit_totals(bundle, torn)
    print(f"torn schedule:     audit saw {audit_sum}, final total "
          f"{final_sum} (expected {expected}); "
          f"relatively serializable: {rsg.is_acyclic}")
    assert not rsg.is_acyclic, "the RSG test must reject the torn schedule"

    # --- The concurrency the relaxation buys: interleave two customers
    # of the SAME family op-by-op.  Their transfers are atomic
    # increments, so the users declared them freely interleavable — the
    # schedule is relatively serializable but NOT conflict serializable.
    same_family = BankingWorkload(
        n_families=1,
        accounts_per_family=2,
        customers_per_family=2,
        transfers_per_customer=1,
        include_credit_audits=False,
        include_bank_audit=False,
        seed=1,
    ).build()
    c1, c2 = same_family.transactions
    zipped = [op for pair in zip(c1.operations, c2.operations) for op in pair]
    riffle = Schedule(same_family.transactions, zipped)
    rsg = RelativeSerializationGraph(riffle, same_family.spec)
    trace = ScheduleExecutor(
        same_family.initial_state, same_family.semantics
    ).run(riffle)
    print(f"\nriffled same-family customers: {riffle}")
    print(f"  conflict serializable: {is_conflict_serializable(riffle)}")
    print(f"  relatively serializable: {rsg.is_acyclic}")
    print(f"  total preserved: {sum(trace.final_state.values())} == "
          f"{same_family.metadata['expected_total']}")

    # --- Protocol race.
    rows = compare_protocols(
        lambda seed: BankingWorkload(
            n_families=2,
            accounts_per_family=2,
            customers_per_family=2,
            seed=seed,
        ).build(),
        seeds=(0, 1, 2),
        short_role="customer",
    )
    print("\nprotocol comparison (3 seeds):")
    print(
        format_table(
            ["protocol", "makespan", "customer resp", "restarts",
             "verified"],
            [
                [row.protocol, f"{row.mean_makespan:.1f}",
                 f"{row.mean_short_response:.1f}", row.total_restarts,
                 row.all_correct]
                for row in rows
            ],
        )
    )


if __name__ == "__main__":
    main()
