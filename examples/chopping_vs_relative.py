#!/usr/bin/env python3
"""Transaction chopping [SSV92] meets relative atomicity (Section 4).

The paper cites chopping as the related relaxation that stays inside
serializability: split each transaction into pieces, run the pieces as
little transactions under 2PL, and the SC-cycle test tells you whether
that was safe.  Relative atomicity generalizes the idea — pieces become
atomic units, and units may differ *per observer*.

The demo:

1. runs the SC-cycle test on a correct and an incorrect chopping of the
   same transactions;
2. finds a finest correct chopping automatically;
3. embeds it as a relative atomicity spec and shows the acceptance gap:
   CSR < chopping-RSR < finest-RSR on a random schedule population;
4. shows what chopping *cannot* express: a per-observer spec accepting a
   schedule the chopping-induced spec rejects.

Run:  python examples/chopping_vs_relative.py
"""

from repro import (
    RelativeAtomicitySpec,
    Schedule,
    Transaction,
    is_conflict_serializable,
    is_relatively_serializable,
)
from repro.specs import (
    Chopping,
    chopping_to_spec,
    finest_correct_chopping,
    finest_spec,
    is_correct_chopping,
)
from repro.workloads.random_schedules import random_schedules


def main() -> None:
    t1 = Transaction.from_notation(1, "w[x] w[y]")
    t2 = Transaction.from_notation(2, "r[x] w[x]")
    t3 = Transaction.from_notation(3, "r[y] w[y]")
    t4 = Transaction.from_notation(4, "r[x] r[y]")
    base = [t1, t2, t3]

    # --- 1. The SC-cycle test.
    chop_t1 = Chopping(tuple(base), {1: frozenset({1})})
    print("chop T1 into [w(x)] [w(y)] with T2 on x, T3 on y:",
          "correct" if is_correct_chopping(chop_t1) else "INCORRECT")

    with_t4 = [t1, t2, t3, t4]
    chop_bad = Chopping(tuple(with_t4), {1: frozenset({1})})
    print("same chop once T4 = r(x) r(y) joins:",
          "correct" if is_correct_chopping(chop_bad) else "INCORRECT",
          "(T4 bridges the pieces: SC-cycle)")

    # --- 2. Finest correct chopping, automatically.
    best = finest_correct_chopping(with_t4)
    print(f"\nfinest correct chopping of the 4-transaction set: "
          f"{best.piece_count()} pieces")
    for tx in with_t4:
        spans = best.pieces(tx.tx_id)
        rendered = " | ".join(
            " ".join(op.label for op in tx.operations[start:end + 1])
            for start, end in spans
        )
        print(f"  T{tx.tx_id}: {rendered}")

    # --- 3. The acceptance comparison (on the 3-transaction set, where
    # a real chopping exists).  Expect the chopping-induced spec to hug
    # the CSR baseline: correct choppings only exist where splitting
    # creates no new behaviour — the paper's "remains within the
    # confines of traditional serializability", measured.
    best3 = finest_correct_chopping(base)
    chop_spec = chopping_to_spec(best3)
    fine_spec = finest_spec(base)
    population = random_schedules(base, 200, seed=3)
    csr = sum(is_conflict_serializable(s) for s in population)
    chop = sum(is_relatively_serializable(s, chop_spec) for s in population)
    fine = sum(is_relatively_serializable(s, fine_spec) for s in population)
    print(f"\nacceptance over 200 random schedules (3-transaction set, "
          f"chopping has {best3.piece_count()} pieces):")
    print(f"  conflict serializable:          {csr}")
    print(f"  chopping-induced relative spec: {chop}")
    print(f"  finest relative spec:           {fine}")

    # --- 4. Per-observer views: beyond what chopping can say.
    # T1's pieces must be uniform for chopping; relative atomicity can
    # keep T1 atomic for T4 (the reader wants consistency) while letting
    # T2 and T3 through at the piece boundary.
    per_observer = RelativeAtomicitySpec(
        with_t4,
        {
            (1, 2): "w[x] | w[y]",
            (1, 3): "w[x] | w[y]",
            (1, 4): "w[x] w[y]",  # atomic for the reader
        },
    )
    # T2 slips between T1's pieces — fine for T2's view, and T4 runs
    # before T1 entirely.
    schedule = Schedule.from_notation(
        with_t4,
        "r4[x] r4[y] w1[x] r2[x] w2[x] w1[y] r3[y] w3[y]",
    )
    print(f"\nschedule: {schedule}")
    print(f"  accepted under the per-observer spec: "
          f"{is_relatively_serializable(schedule, per_observer)}")
    print(f"  conflict serializable:                "
          f"{is_conflict_serializable(schedule)}")


if __name__ == "__main__":
    main()
