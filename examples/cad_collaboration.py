#!/usr/bin/env python3
"""Collaborative CAD teams with multilevel atomicity (Sections 1 and 5).

Designers are grouped into teams: teammates may interleave freely, other
teams observe a designer only at *part boundaries* (each part edit is an
atomic unit).  The specification is written in Lynch's multilevel style
and expanded to the paper's general relative atomicity model.

The demo:

1. builds the team hierarchy and shows the expanded per-pair views;
2. shows a cross-team interleaving accepted at a part boundary and one
   rejected inside a part edit;
3. races the four online protocols on the workload.

Run:  python examples/cad_collaboration.py
"""

from repro import RelativeSerializationGraph, Schedule
from repro.analysis.protocol_comparison import compare_protocols
from repro.analysis.tables import format_table
from repro.workloads.cad import CadWorkload


def main() -> None:
    workload = CadWorkload(
        n_teams=2,
        designers_per_team=2,
        parts_per_team=2,
        edits_per_designer=2,
        seed=0,
    )
    bundle = workload.build()
    team_of = bundle.metadata["team_of"]
    print("designers:")
    for tx in bundle.transactions:
        print(f"  {tx}   [team {team_of[tx.tx_id]}]")

    print("\nexpanded relative atomicity views (multilevel -> pairwise):")
    for tx, observer in bundle.spec.pairs():
        view = bundle.spec.atomicity(tx, observer)
        relation = (
            "teammate" if team_of[tx] == team_of[observer] else "cross-team"
        )
        rendered = view.render(bundle.spec.transactions[tx])
        print(f"  T{tx} as seen by T{observer} ({relation}): {rendered}")

    # Pick one designer per team.
    team0 = [tx for tx in bundle.transactions if team_of[tx.tx_id] == 0][0]
    team1 = [tx for tx in bundle.transactions if team_of[tx.tx_id] == 1][0]
    others = [
        tx
        for tx in bundle.transactions
        if tx.tx_id not in (team0.tx_id, team1.tx_id)
    ]

    # --- Accepted: the outsider slips in at a part boundary (after the
    # first read+write edit pair).
    order = (
        list(team0.operations[:2])
        + list(team1.operations)
        + list(team0.operations[2:])
        + [op for tx in others for op in tx]
    )
    at_boundary = Schedule(bundle.transactions, order)
    rsg = RelativeSerializationGraph(at_boundary, bundle.spec)
    print(f"\ncross-team interleaving at a part boundary: "
          f"relatively serializable = {rsg.is_acyclic}")

    # --- Rejected: the outsider edits the same part *inside* another
    # team's read+write pair, creating a dependency into the open unit.
    # Craft it explicitly: T_a reads part p, T_b writes p, T_a writes p.
    from repro.core.transactions import Transaction
    from repro.core.atomicity import RelativeAtomicitySpec

    alice = Transaction.from_notation(1, "r[p] w[p]")
    bob = Transaction.from_notation(2, "w[p]")
    spec = RelativeAtomicitySpec(
        [alice, bob],
        {
            # Alice's edit is atomic to the other team; Bob is a single
            # operation.
            (1, 2): "r[p] w[p]",
            (2, 1): "w[p]",
        },
    )
    torn_edit = Schedule.from_notation([alice, bob], "r1[p] w2[p] w1[p]")
    rsg = RelativeSerializationGraph(torn_edit, spec)
    print(f"cross-team write inside an open part edit ({torn_edit}): "
          f"relatively serializable = {rsg.is_acyclic}")
    assert not rsg.is_acyclic

    # --- Protocol race.
    rows = compare_protocols(
        lambda seed: CadWorkload(
            n_teams=2,
            designers_per_team=2,
            parts_per_team=2,
            edits_per_designer=2,
            seed=seed,
        ).build(),
        seeds=(0, 1, 2, 3),
        short_role="designer",
    )
    print("\nprotocol comparison (4 seeds):")
    print(
        format_table(
            ["protocol", "makespan", "designer resp", "restarts",
             "verified"],
            [
                [row.protocol, f"{row.mean_makespan:.1f}",
                 f"{row.mean_response:.1f}", row.total_restarts,
                 row.all_correct]
                for row in rows
            ],
        )
    )


if __name__ == "__main__":
    main()
