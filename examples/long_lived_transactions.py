#!/usr/bin/env python3
"""Long-lived transactions and the altruistic-locking connection
(Section 5, [SGMA87]).

One long transaction scans every object; short transactions want in and
out.  Under the traditional model the long transaction is a wall; with
per-object breakpoints ("donate points"), shorts run in its wake.

The demo compares, over several seeds:

* strict 2PL (shorts queue behind the scanner),
* altruistic locking (shorts borrow donated locks),
* SGT (optimistic, aborts on conflict cycles),
* RSGT (the paper's protocol: accepts exactly the relatively
  serializable prefixes).

and shows how the spec itself changes what is admissible: the same
interleaving is rejected under absolute atomicity and accepted once the
long transaction declares its donate points.

Run:  python examples/long_lived_transactions.py
"""

from repro import RelativeSerializationGraph, Schedule
from repro.analysis.protocol_comparison import compare_protocols
from repro.analysis.tables import format_table
from repro.workloads.longlived import LongLivedWorkload


def main() -> None:
    relaxed = LongLivedWorkload(
        n_objects=4, n_long=1, n_short=1, short_ops=1, seed=2
    ).build()
    (long_tx,) = relaxed.transactions_with_role("long")
    (short_tx,) = relaxed.transactions_with_role("short")
    print(f"long:  {long_tx}")
    print(f"short: {short_tx}")
    view = relaxed.spec.atomicity(long_tx.tx_id, short_tx.tx_id)
    print(f"\nlong transaction as the short one sees it "
          f"(donate points as '|'):\n  {view.render(long_tx)}")

    # A short transaction that reads the object the scanner just
    # finished AND updates one the scanner has not reached yet.  It
    # serializes after the long transaction on x0 but before it on x3 —
    # impossible under absolute atomicity (serialization-graph cycle),
    # fine between the declared donate points.
    from repro.core.atomicity import RelativeAtomicitySpec
    from repro.core.transactions import Transaction

    scanner = Transaction.from_notation(
        1, "r[x0] w[x0] r[x1] w[x1] r[x2] w[x2] r[x3] w[x3]"
    )
    hopper = Transaction.from_notation(2, "r[x0] w[x3]")
    donate_spec = RelativeAtomicitySpec(
        [scanner, hopper],
        {(1, 2): "r[x0] w[x0] | r[x1] w[x1] | r[x2] w[x2] | r[x3] w[x3]"},
    )
    absolute_spec_pair = RelativeAtomicitySpec([scanner, hopper])
    order = (
        list(scanner.operations[:2])
        + list(hopper.operations)
        + list(scanner.operations[2:])
    )
    in_the_wake = Schedule([scanner, hopper], order)
    print(f"\nschedule (short hops into the wake): {in_the_wake}")
    relaxed_verdict = RelativeSerializationGraph(
        in_the_wake, donate_spec
    ).is_acyclic
    strict_verdict = RelativeSerializationGraph(
        in_the_wake, absolute_spec_pair
    ).is_acyclic
    print(f"  accepted with donate points:       {relaxed_verdict}")
    print(f"  accepted under absolute atomicity: {strict_verdict}")
    assert relaxed_verdict and not strict_verdict

    # --- The measurement: response times across protocols and seeds.
    rows = compare_protocols(
        lambda seed: LongLivedWorkload(
            n_objects=6, n_long=1, n_short=5, short_ops=2, seed=seed
        ).build(),
        seeds=tuple(range(6)),
    )
    print("\nprotocol comparison on the 1-long + 5-shorts mix (6 seeds):")
    print(
        format_table(
            ["protocol", "makespan", "resp (all)", "resp (short)",
             "restarts", "waits", "verified"],
            [
                [
                    row.protocol,
                    f"{row.mean_makespan:.1f}",
                    f"{row.mean_response:.1f}",
                    f"{row.mean_short_response:.1f}",
                    row.total_restarts,
                    row.total_waits,
                    row.all_correct,
                ]
                for row in rows
            ],
        )
    )
    by_name = {row.protocol: row for row in rows}
    gain = (
        by_name["strict-2pl"].mean_short_response
        / by_name["rsgt"].mean_short_response
    )
    print(f"\nshort-transaction response time: RSGT is {gain:.2f}x faster "
          "than strict 2PL on this mix")


if __name__ == "__main__":
    main()
