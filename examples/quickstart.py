#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1, end to end.

Walks through the library's core loop on the exact example from the
paper (Agrawal, Bruno, El Abbadi, Krishnaswamy — PODS 1994):

1. declare transactions in ``ri[x]`` notation;
2. attach relative atomicity specifications (``|`` marks the atomic-unit
   boundaries the paper draws as boxes);
3. classify schedules into the Figure 5 hierarchy;
4. test relative serializability with the relative serialization graph
   (Theorem 1) and extract the equivalent relatively serial schedule.

Run:  python examples/quickstart.py
"""

from repro import (
    RelativeAtomicitySpec,
    RelativeSerializationGraph,
    Schedule,
    Transaction,
    classify,
)


def main() -> None:
    # -- 1. The transactions of Figure 1 -------------------------------
    t1 = Transaction.from_notation(1, "r[x] w[x] w[z] r[y]")
    t2 = Transaction.from_notation(2, "r[y] w[y] r[x]")
    t3 = Transaction.from_notation(3, "w[x] w[y] w[z]")
    transactions = [t1, t2, t3]

    # -- 2. Relative atomicity: who may interleave where ---------------
    # "|" separates atomic units; e.g. T2 may run between w1[x] and
    # w1[z], but never inside [r1[x] w1[x]] or [w1[z] r1[y]].
    spec = RelativeAtomicitySpec(
        transactions,
        {
            (1, 2): "r[x] w[x] | w[z] r[y]",
            (1, 3): "r[x] w[x] | w[z] | r[y]",
            (2, 1): "r[y] | w[y] r[x]",
            (2, 3): "r[y] w[y] | r[x]",
            (3, 1): "w[x] w[y] | w[z]",
            (3, 2): "w[x] w[y] | w[z]",
        },
    )
    print("Relative atomicity specification (Figure 1):")
    print(spec.render())

    # -- 3. Classify the paper's three schedules -----------------------
    schedules = {
        "Sra": "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]",
        "Srs": "r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]",
        "S2": "r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]",
    }
    for name, notation in schedules.items():
        schedule = Schedule.from_notation(transactions, notation)
        print(f"\nschedule {name}: {schedule}")
        print(classify(schedule, spec).describe())

    # -- 4. Theorem 1 in action ----------------------------------------
    s2 = Schedule.from_notation(transactions, schedules["S2"])
    rsg = RelativeSerializationGraph(s2, spec)
    print(f"\nRSG(S2): {rsg.graph.node_count} vertices, "
          f"{rsg.graph.edge_count} arcs, acyclic={rsg.is_acyclic}")
    witness = rsg.equivalent_relatively_serial_schedule()
    print(f"equivalent relatively serial schedule: {witness}")
    print("(compare with the paper's Srs — they are identical)")


if __name__ == "__main__":
    main()
