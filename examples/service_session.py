#!/usr/bin/env python3
"""A live relative-atomicity session against the transaction service.

Boots an in-process :class:`~repro.service.RsrServer` and walks two TCP
clients through the paper's core move: a long-running transaction
declares a *cut* (an atomic-unit boundary, the ``|`` of the paper's
notation) at ``begin`` time, and a short transaction commits inside
that cut — an interleaving strict two-phase locking would forbid, yet
the server's RSGT scheduler admits and, at drain, certifies as
relatively serializable.

Run:  PYTHONPATH=src python examples/service_session.py
"""

import asyncio

from repro.service import RsrServer, ServiceClient, ServiceConfig


async def main() -> None:
    server = RsrServer(ServiceConfig(host="127.0.0.1", port=0))
    await server.start()
    print(f"server on {server.host}:{server.port} (protocol rsgt)")

    # -- tenant with some inventory ------------------------------------
    admin = await ServiceClient.connect(server.host, server.port)
    await admin.tenant("shop", objects={"stock": 100, "audit": ""})

    # -- a long audit transaction with a declared cut ------------------
    # "r[stock] w[audit] | r[stock] w[audit]": other transactions may
    # slip into the gap between its two atomic units.
    long_client = await ServiceClient.connect(server.host, server.port)
    long_txn = (
        await long_client.begin(
            "r[stock] w[audit] r[stock] w[audit]",
            tenant="shop",
            cuts=[2],
        )
    )["txn"]
    first = (await long_client.read(long_txn, "stock"))["value"]
    await long_client.write(long_txn, "audit", f"before={first}")

    # -- a short sale commits inside the cut ---------------------------
    short_client = await ServiceClient.connect(server.host, server.port)
    short_txn = (
        await short_client.begin("r[stock] w[stock]", tenant="shop")
    )["txn"]
    stock = (await short_client.read(short_txn, "stock"))["value"]
    await short_client.write(short_txn, "stock", stock - 1)
    await short_client.commit(short_txn)
    print(f"T{short_txn} sold one unit inside T{long_txn}'s cut")

    # -- the audit's second unit sees the sale -------------------------
    second = (await long_client.read(long_txn, "stock"))["value"]
    await long_client.write(long_txn, "audit", f"after={second}")
    await long_client.commit(long_txn)
    print(f"T{long_txn} audited stock {first} -> {second} and committed")

    # -- certification: the committed projection is RSR ----------------
    verdict = (await admin.certify("shop"))["certifications"][0]
    print(
        "certified:", verdict["certified"],
        "survivors:", verdict["survivors"],
    )

    for client in (admin, long_client, short_client):
        await client.close()
    await server.drain("example-complete")
    print(f"drained, exit code {server.exit_code}")


if __name__ == "__main__":
    asyncio.run(main())
